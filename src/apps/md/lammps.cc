#include "apps/md/lammps.hh"

#include <algorithm>
#include <cmath>

#include "machine/cache.hh"
#include "simmpi/collectives.hh"
#include "util/logging.hh"

namespace mcscope {

std::vector<LammpsBenchmark>
lammpsBenchmarks()
{
    return {
        {"lj", MdStyle::LennardJones, 32000, 100},
        {"chain", MdStyle::Chain, 32000, 100},
        {"eam", MdStyle::Metal, 32000, 100},
    };
}

LammpsBenchmark
lammpsBenchmarkByName(const std::string &name)
{
    for (const LammpsBenchmark &b : lammpsBenchmarks()) {
        if (b.name == name)
            return b;
    }
    fatal("unknown LAMMPS benchmark '", name, "'");
}

LammpsWorkload::LammpsWorkload(LammpsBenchmark bench)
    : bench_(std::move(bench))
{
    MCSCOPE_ASSERT(bench_.atoms > 0 && bench_.steps > 0,
                   "bad LAMMPS benchmark");
}

uint64_t
LammpsWorkload::iterations() const
{
    return static_cast<uint64_t>(bench_.steps);
}

std::vector<Prim>
LammpsWorkload::body(const Machine &machine, const MpiRuntime &rt,
                     int rank) const
{
    const int p = rt.ranks();
    const double atoms = bench_.atoms;
    const double local = atoms / p;
    const double l2 = machine.config().l2Bytes;
    RankProgram prog(machine, rt, rank, sharingSignature(rt.ranks()));

    double flops = 0.0;
    double bytes = 0.0;
    double boost_gain = 0.0;
    double ws = 0.0;
    int halo_passes = 1;

    switch (bench_.style) {
      case MdStyle::LennardJones:
        // ~75 neighbors within 2.5 sigma at reduced density 0.8442;
        // the neighbor-list gather misses heavily.
        flops = local * 37.5 * 30.0;
        bytes = local * 75.0 * 12.0 * 0.50 + local * 150.0;
        ws = local * 380.0;
        boost_gain = 0.12;
        break;
      case MdStyle::Chain:
        // Bead-spring polymer: bonded terms + a thin repulsive pair
        // shell; small working set, strong cache-capacity speedup.
        flops = local * 110.0;
        bytes = local * 60.0 *
                cacheMissFraction(local * 100.0, l2);
        ws = local * 100.0;
        boost_gain = 0.50;
        break;
      case MdStyle::Metal:
        // EAM: density pass + embedding-force pass; the second pass
        // rides on the first's cached neighborhoods.
        flops = local * 37.5 * 55.0;
        bytes = local * 75.0 * 14.0 * 0.30 + local * 120.0;
        ws = local * 420.0;
        boost_gain = 0.10;
        halo_passes = 2;
        break;
    }

    const double boost = cacheResidencyBoost(ws, l2, boost_gain);
    prog.compute(flops, std::min(1.0, 0.45 * boost));
    prog.memory(bytes);

    if (p > 1) {
        // Ghost-atom exchange: surface-to-volume scaled halo with the
        // two ring neighbors per pass.  The chain benchmark's WCA
        // cutoff (2^(1/6) sigma) needs a far thinner ghost shell than
        // the 2.5-sigma LJ/EAM cutoffs.
        double halo_atoms = 6.0 * std::pow(local, 2.0 / 3.0);
        if (bench_.style == MdStyle::Chain)
            halo_atoms *= 0.25;
        double halo_bytes = std::min(halo_atoms, local) * 32.0;
        for (int pass = 0; pass < halo_passes; ++pass) {
            appendRingShift(rt, prog.prims(), rank, halo_bytes,
                            0xC00000ULL +
                                (static_cast<uint64_t>(pass) << 14),
                            tags::kComm);
        }
        // Thermo reduction.
        appendAllReduce(rt, prog.prims(), rank, 48.0, 0xD00000ULL,
                        tags::kComm);
    }
    return prog.take();
}

} // namespace mcscope
