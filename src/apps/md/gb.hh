/**
 * @file
 * A functional Generalized-Born implicit-solvent energy: the O(N^2)
 * pairwise computation that makes AMBER's GB benchmarks compute-bound
 * (and therefore near-linearly scalable in Table 8).
 */

#ifndef MCSCOPE_APPS_MD_GB_HH
#define MCSCOPE_APPS_MD_GB_HH

#include <vector>

#include "apps/md/forcefield.hh"

namespace mcscope {

/** GB model constants. */
struct GbParams
{
    double dielectricScale = 0.5; ///< (1/eps_in - 1/eps_out) / 2
    double bornRadius = 1.5;      ///< uniform effective Born radius
};

/**
 * Still-style GB polarization energy:
 * E = -scale * sum_{i,j} q_i q_j / f_gb(r_ij),
 * f_gb = sqrt(r^2 + R_i R_j exp(-r^2 / (4 R_i R_j))).
 */
double gbEnergy(const GbParams &params, const std::vector<Vec3> &positions,
                const std::vector<double> &charges);

} // namespace mcscope

#endif // MCSCOPE_APPS_MD_GB_HH
