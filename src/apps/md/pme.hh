/**
 * @file
 * A functional mini Particle-Mesh-Ewald reciprocal-space pass: spread
 * charges to a regular grid, 3-D FFT, apply the reciprocal-space
 * Green's function, inverse FFT, gather energies.  This is the
 * FFT-bearing phase of AMBER's sander that Tables 7 and 9 time.
 */

#ifndef MCSCOPE_APPS_MD_PME_HH
#define MCSCOPE_APPS_MD_PME_HH

#include <cstddef>
#include <vector>

#include "apps/md/forcefield.hh"
#include "kernels/fft.hh"

namespace mcscope {

/** PME mesh parameters. */
struct PmeParams
{
    size_t grid = 32;    ///< points per edge (power of two)
    double box = 1.0;    ///< cubic box edge
    double beta = 3.0;   ///< Ewald splitting parameter
};

/**
 * Reciprocal-space energy of a point-charge set (nearest-grid-point
 * spreading; adequate for validating conservation of total charge and
 * scaling behaviour).
 */
double pmeReciprocalEnergy(const PmeParams &params,
                           const std::vector<Vec3> &positions,
                           const std::vector<double> &charges);

/**
 * Spread charges to the mesh (nearest grid point).  Exposed for
 * tests: the mesh sum must equal the total charge.
 */
std::vector<double> pmeSpreadCharges(const PmeParams &params,
                                     const std::vector<Vec3> &positions,
                                     const std::vector<double> &charges);

} // namespace mcscope

#endif // MCSCOPE_APPS_MD_PME_HH
