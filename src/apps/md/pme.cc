#include "apps/md/pme.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"

namespace mcscope {

std::vector<double>
pmeSpreadCharges(const PmeParams &params, const std::vector<Vec3> &positions,
                 const std::vector<double> &charges)
{
    MCSCOPE_ASSERT(positions.size() == charges.size(),
                   "positions/charges mismatch");
    const size_t g = params.grid;
    MCSCOPE_ASSERT(g > 0 && (g & (g - 1)) == 0,
                   "PME grid must be a power of two");
    std::vector<double> mesh(g * g * g, 0.0);
    for (size_t i = 0; i < positions.size(); ++i) {
        size_t idx[3];
        for (int k = 0; k < 3; ++k) {
            double w = positions[i][k] / params.box;
            w -= std::floor(w);
            size_t c = static_cast<size_t>(w * g);
            if (c >= g)
                c = g - 1;
            idx[k] = c;
        }
        mesh[(idx[2] * g + idx[1]) * g + idx[0]] += charges[i];
    }
    return mesh;
}

double
pmeReciprocalEnergy(const PmeParams &params,
                    const std::vector<Vec3> &positions,
                    const std::vector<double> &charges)
{
    const size_t g = params.grid;
    std::vector<double> mesh = pmeSpreadCharges(params, positions,
                                                charges);
    std::vector<Complex> rho(mesh.begin(), mesh.end());
    fft3d(rho, g, g, g, /*inverse=*/false);

    // E = (1/2V) sum_{k != 0} 4 pi / k^2 exp(-k^2 / 4 beta^2) |rho_k|^2
    const double volume = params.box * params.box * params.box;
    const double two_pi = 2.0 * std::numbers::pi;
    double energy = 0.0;
    for (size_t kz = 0; kz < g; ++kz) {
        for (size_t ky = 0; ky < g; ++ky) {
            for (size_t kx = 0; kx < g; ++kx) {
                if (kx == 0 && ky == 0 && kz == 0)
                    continue;
                auto freq = [&](size_t k) {
                    double f = static_cast<double>(k);
                    if (f > g / 2.0)
                        f -= static_cast<double>(g);
                    return two_pi * f / params.box;
                };
                double k2 = freq(kx) * freq(kx) + freq(ky) * freq(ky) +
                            freq(kz) * freq(kz);
                double green = 4.0 * std::numbers::pi / k2 *
                               std::exp(-k2 /
                                        (4.0 * params.beta * params.beta));
                const Complex &c = rho[(kz * g + ky) * g + kx];
                energy += green * std::norm(c);
            }
        }
    }
    return energy / (2.0 * volume);
}

} // namespace mcscope
