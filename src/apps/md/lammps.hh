/**
 * @file
 * LAMMPS benchmark models: the three 32,000-atom, 100-step benchmarks
 * of Section 4.1 (Lennard-Jones liquid, polymer chain, EAM metal),
 * behind Tables 10-11 of the paper.
 */

#ifndef MCSCOPE_APPS_MD_LAMMPS_HH
#define MCSCOPE_APPS_MD_LAMMPS_HH

#include <string>
#include <vector>

#include "apps/md/engine.hh"
#include "kernels/workload.hh"

namespace mcscope {

/** One LAMMPS benchmark configuration. */
struct LammpsBenchmark
{
    std::string name;
    MdStyle style = MdStyle::LennardJones;
    int atoms = 32000;
    int steps = 100;
};

/** The paper's LJ / chain / EAM set. */
std::vector<LammpsBenchmark> lammpsBenchmarks();

/** Look up by name ("lj", "chain", "eam"); fatal if unknown. */
LammpsBenchmark lammpsBenchmarkByName(const std::string &name);

/**
 * LAMMPS cost model with spatial decomposition: per step, a
 * neighbor-based force pass (two passes for EAM), ghost-atom halo
 * exchange, and the per-step thermodynamic reduction.  The chain
 * benchmark's per-rank working set collapses into L2 as ranks are
 * added, reproducing its super-linear speedup (Table 10).
 */
class LammpsWorkload : public LoopWorkload
{
  public:
    explicit LammpsWorkload(LammpsBenchmark bench);

    std::string name() const override { return "lammps." + bench_.name; }
    std::string signature() const override
    {
        return "lammps(bench=" + bench_.name +
               ",style=" + std::to_string(static_cast<int>(bench_.style)) +
               ",atoms=" + std::to_string(bench_.atoms) +
               ",steps=" + std::to_string(bench_.steps) + ")";
    }
    uint64_t iterations() const override;
    std::vector<Prim> body(const Machine &machine, const MpiRuntime &rt,
                           int rank) const override;

    const LammpsBenchmark &benchmark() const { return bench_; }

    /** Spatial decomposition: each rank owns its box of atoms. */
    SharingDescriptor
    sharingSignature(int ranks) const override
    {
        (void)ranks;
        return SharingDescriptor::privateData();
    }
  private:
    LammpsBenchmark bench_;
};

} // namespace mcscope

#endif // MCSCOPE_APPS_MD_LAMMPS_HH
