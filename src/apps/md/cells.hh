/**
 * @file
 * Periodic cell lists for O(N) short-range neighbor finding, the
 * spatial-decomposition workhorse of LAMMPS-style MD.
 */

#ifndef MCSCOPE_APPS_MD_CELLS_HH
#define MCSCOPE_APPS_MD_CELLS_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "apps/md/forcefield.hh"

namespace mcscope {

/**
 * Uniform cell grid over a cubic periodic box.
 *
 * Cells are at least `cutoff` wide, so all pairs within the cutoff
 * are found by scanning each cell's 27-neighborhood.
 */
class CellList
{
  public:
    /**
     * @param box_length cubic box edge.
     * @param cutoff     interaction range (must be <= box/2).
     */
    CellList(double box_length, double cutoff);

    /** Rebuild from particle positions (wrapped into the box). */
    void build(const std::vector<Vec3> &positions);

    /** Cells per edge. */
    int cellsPerEdge() const { return edge_; }

    /**
     * Visit each unordered pair (i, j) with squared distance below
     * cutoff^2 under the minimum-image convention.  The callback
     * receives (i, j, dr = r_i - r_j, r2).
     */
    void forEachPair(
        const std::vector<Vec3> &positions,
        const std::function<void(size_t, size_t, const Vec3 &, double)>
            &fn) const;

    /** Minimum-image displacement a - b in this box. */
    Vec3 minimumImage(const Vec3 &a, const Vec3 &b) const;

  private:
    int cellIndexOf(const Vec3 &p) const;

    double box_;
    double cutoff_;
    int edge_;
    std::vector<std::vector<size_t>> cells_;
};

} // namespace mcscope

#endif // MCSCOPE_APPS_MD_CELLS_HH
