/**
 * @file
 * A small but real molecular-dynamics engine: particle system,
 * Lennard-Jones / bonded / EAM force evaluation over cell lists, and
 * velocity-Verlet integration.  It validates the physics behind the
 * MD cost models (energy behaviour, force symmetry) and generates the
 * operation counts the cost models carry.
 */

#ifndef MCSCOPE_APPS_MD_ENGINE_HH
#define MCSCOPE_APPS_MD_ENGINE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "apps/md/cells.hh"
#include "apps/md/forcefield.hh"

namespace mcscope {

/** Interaction style of an MD system. */
enum class MdStyle
{
    /** Pure Lennard-Jones liquid ("lj" in the LAMMPS suite). */
    LennardJones,

    /** Harmonic bead-spring polymer + soft LJ ("chain"). */
    Chain,

    /** EAM-style metal ("eam"): pair density + embedding. */
    Metal,
};

/** A particle system in a periodic cubic box. */
struct MdSystem
{
    double box = 0.0;
    std::vector<Vec3> positions;
    std::vector<Vec3> velocities;
    std::vector<std::pair<size_t, size_t>> bonds;
    MdStyle style = MdStyle::LennardJones;
    LjParams lj;
    BondParams bond;
    double eamC = 1.0;
    double eamBeta = 3.0;
    double eamR0 = 1.0;

    size_t size() const { return positions.size(); }
};

/**
 * Build an `n`-particle system on a perturbed lattice with small
 * random velocities (deterministic in `seed`).  For Chain style,
 * consecutive particles are bonded in chains of `chain_len`.
 */
MdSystem makeMdSystem(size_t n, double density, MdStyle style,
                      uint64_t seed, size_t chain_len = 32);

/** Potential + kinetic energy report. */
struct MdEnergies
{
    double potential = 0.0;
    double kinetic = 0.0;

    double total() const { return potential + kinetic; }
};

/** Compute forces; returns potential energy. */
double computeForces(const MdSystem &sys, std::vector<Vec3> &forces);

/** Current energies. */
MdEnergies measureEnergies(const MdSystem &sys);

/**
 * Advance `steps` velocity-Verlet steps of size `dt`.
 * Returns the energies after the last step.
 */
MdEnergies integrate(MdSystem &sys, double dt, int steps);

/** Mean neighbor count within the cutoff (for cost-model constants). */
double averageNeighborCount(const MdSystem &sys);

} // namespace mcscope

#endif // MCSCOPE_APPS_MD_ENGINE_HH
