/**
 * @file
 * Force-field primitives for the mini molecular-dynamics engine:
 * Lennard-Jones pairs, harmonic bonds (polymer chains), and an
 * EAM-style embedding term (metals).
 */

#ifndef MCSCOPE_APPS_MD_FORCEFIELD_HH
#define MCSCOPE_APPS_MD_FORCEFIELD_HH

#include <array>

namespace mcscope {

/** A 3-vector. */
using Vec3 = std::array<double, 3>;

/** Component-wise helpers. */
Vec3 vecSub(const Vec3 &a, const Vec3 &b);
Vec3 vecAdd(const Vec3 &a, const Vec3 &b);
Vec3 vecScale(const Vec3 &a, double s);
double vecDot(const Vec3 &a, const Vec3 &b);
double vecNorm(const Vec3 &a);

/** Lennard-Jones 6-12 parameters. */
struct LjParams
{
    double epsilon = 1.0;
    double sigma = 1.0;
    double cutoff = 2.5;
};

/**
 * LJ pair energy at squared distance r2 (no cutoff shift).
 * Returns 0 beyond the cutoff.
 */
double ljEnergy(const LjParams &p, double r2);

/**
 * LJ scalar force magnitude divided by r (so force vector =
 * ljForceOverR * dr).  Zero beyond the cutoff.
 */
double ljForceOverR(const LjParams &p, double r2);

/** Harmonic bond parameters. */
struct BondParams
{
    double k = 100.0;
    double r0 = 1.0;
};

/** Harmonic bond energy at distance r. */
double bondEnergy(const BondParams &p, double r);

/** Harmonic bond force magnitude / r. */
double bondForceOverR(const BondParams &p, double r);

/**
 * EAM-style embedding energy F(rho) = -C * sqrt(rho), the standard
 * Finnis-Sinclair form.
 */
double eamEmbedEnergy(double c, double rho);

/** d F / d rho for the embedding term. */
double eamEmbedDerivative(double c, double rho);

/** Pair-density contribution rho(r) = exp(-beta (r - r0)). */
double eamDensity(double beta, double r0, double r);

} // namespace mcscope

#endif // MCSCOPE_APPS_MD_FORCEFIELD_HH
