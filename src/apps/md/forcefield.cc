#include "apps/md/forcefield.hh"

#include <cmath>

#include "util/logging.hh"

namespace mcscope {

Vec3
vecSub(const Vec3 &a, const Vec3 &b)
{
    return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}

Vec3
vecAdd(const Vec3 &a, const Vec3 &b)
{
    return {a[0] + b[0], a[1] + b[1], a[2] + b[2]};
}

Vec3
vecScale(const Vec3 &a, double s)
{
    return {a[0] * s, a[1] * s, a[2] * s};
}

double
vecDot(const Vec3 &a, const Vec3 &b)
{
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

double
vecNorm(const Vec3 &a)
{
    return std::sqrt(vecDot(a, a));
}

double
ljEnergy(const LjParams &p, double r2)
{
    MCSCOPE_ASSERT(r2 > 0.0, "coincident particles");
    if (r2 >= p.cutoff * p.cutoff)
        return 0.0;
    double s2 = p.sigma * p.sigma / r2;
    double s6 = s2 * s2 * s2;
    return 4.0 * p.epsilon * (s6 * s6 - s6);
}

double
ljForceOverR(const LjParams &p, double r2)
{
    MCSCOPE_ASSERT(r2 > 0.0, "coincident particles");
    if (r2 >= p.cutoff * p.cutoff)
        return 0.0;
    double s2 = p.sigma * p.sigma / r2;
    double s6 = s2 * s2 * s2;
    return 24.0 * p.epsilon * (2.0 * s6 * s6 - s6) / r2;
}

double
bondEnergy(const BondParams &p, double r)
{
    double d = r - p.r0;
    return 0.5 * p.k * d * d;
}

double
bondForceOverR(const BondParams &p, double r)
{
    MCSCOPE_ASSERT(r > 0.0, "zero-length bond");
    return -p.k * (r - p.r0) / r;
}

double
eamEmbedEnergy(double c, double rho)
{
    MCSCOPE_ASSERT(rho >= 0.0, "negative electron density");
    return -c * std::sqrt(rho);
}

double
eamEmbedDerivative(double c, double rho)
{
    MCSCOPE_ASSERT(rho > 0.0, "embedding derivative needs rho > 0");
    return -0.5 * c / std::sqrt(rho);
}

double
eamDensity(double beta, double r0, double r)
{
    return std::exp(-beta * (r - r0));
}

} // namespace mcscope
