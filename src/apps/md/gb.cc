#include "apps/md/gb.hh"

#include <cmath>

#include "util/logging.hh"

namespace mcscope {

double
gbEnergy(const GbParams &params, const std::vector<Vec3> &positions,
         const std::vector<double> &charges)
{
    MCSCOPE_ASSERT(positions.size() == charges.size(),
                   "positions/charges mismatch");
    const size_t n = positions.size();
    const double rr = params.bornRadius * params.bornRadius;
    double energy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        // Self term.
        energy -= params.dielectricScale * charges[i] * charges[i] /
                  params.bornRadius;
        for (size_t j = i + 1; j < n; ++j) {
            Vec3 d = vecSub(positions[i], positions[j]);
            double r2 = vecDot(d, d);
            double fgb =
                std::sqrt(r2 + rr * std::exp(-r2 / (4.0 * rr)));
            energy -= 2.0 * params.dielectricScale * charges[i] *
                      charges[j] / fgb;
        }
    }
    return energy;
}

} // namespace mcscope
