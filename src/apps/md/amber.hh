/**
 * @file
 * AMBER sander benchmark models: the five Table 6 benchmarks (dhfr,
 * factor_ix, gb_cox2, gb_mb, JAC) with Particle-Mesh-Ewald or
 * Generalized-Born dynamics, behind Tables 7-9 of the paper.
 */

#ifndef MCSCOPE_APPS_MD_AMBER_HH
#define MCSCOPE_APPS_MD_AMBER_HH

#include <string>
#include <vector>

#include "kernels/workload.hh"

namespace mcscope {

/** MD technique of an AMBER benchmark. */
enum class MdTechnique
{
    Pme, ///< explicit solvent, FFT-based reciprocal space
    Gb,  ///< implicit solvent, O(N^2) pairwise
};

/** Technique display name. */
std::string mdTechniqueName(MdTechnique technique);

/** One AMBER benchmark (a Table 6 column). */
struct AmberBenchmark
{
    std::string name;
    int atoms = 0;
    MdTechnique technique = MdTechnique::Pme;
    int pmeGrid = 64; ///< PME mesh edge (power of two)
    int steps = 100;  ///< MD steps per run
};

/** The Table 6 benchmark set in paper order. */
std::vector<AmberBenchmark> amberBenchmarks();

/** Look up a Table 6 benchmark by name (fatal if unknown). */
AmberBenchmark amberBenchmarkByName(const std::string &name);

/**
 * sander cost model: per MD step, a cutoff direct-space pass, bonded
 * terms + integration, the PME reciprocal pass (tagged tags::kFft so
 * the harness can report the Table 7 FFT-phase time), or the GB
 * pairwise pass; plus coordinate/force exchange.
 */
class AmberWorkload : public LoopWorkload
{
  public:
    explicit AmberWorkload(AmberBenchmark bench);

    std::string name() const override { return "amber." + bench_.name; }
    std::string signature() const override
    {
        return "amber(bench=" + bench_.name +
               ",atoms=" + std::to_string(bench_.atoms) +
               ",technique=" + mdTechniqueName(bench_.technique) +
               ",pme_grid=" + std::to_string(bench_.pmeGrid) +
               ",steps=" + std::to_string(bench_.steps) + ")";
    }
    uint64_t iterations() const override;
    std::vector<Prim> body(const Machine &machine, const MpiRuntime &rt,
                           int rank) const override;

    const AmberBenchmark &benchmark() const { return bench_; }

    /**
     * Replicated-data MD: every rank reads the full coordinate set
     * each step, so the arrays are read-shared by all ranks.
     */
    SharingDescriptor
    sharingSignature(int ranks) const override
    {
        return SharingDescriptor::readShared(ranks);
    }
  private:
    AmberBenchmark bench_;
};

} // namespace mcscope

#endif // MCSCOPE_APPS_MD_AMBER_HH
