#include "apps/pop/pop.hh"

#include <algorithm>
#include <cmath>

#include "machine/cache.hh"
#include "simmpi/collectives.hh"
#include "util/logging.hh"

namespace mcscope {

PopConfig
popX1Config()
{
    return {"x1", 320, 384, 40, 50, 200};
}

PopWorkload::PopWorkload(PopConfig cfg) : cfg_(std::move(cfg))
{
    MCSCOPE_ASSERT(cfg_.nx > 0 && cfg_.ny > 0 && cfg_.levels > 0 &&
                       cfg_.steps > 0,
                   "bad POP configuration");
}

uint64_t
PopWorkload::iterations() const
{
    return static_cast<uint64_t>(cfg_.steps);
}

std::vector<Prim>
PopWorkload::body(const Machine &machine, const MpiRuntime &rt,
                  int rank) const
{
    const int p = rt.ranks();
    const BlockDecomposition dec =
        BlockDecomposition::make(cfg_.nx, cfg_.ny, p);
    const double pts2d = dec.localPoints();
    const double pts3d = pts2d * cfg_.levels;
    const double l2 = machine.config().l2Bytes;
    RankProgram prog(machine, rt, rank, sharingSignature(rt.ranks()));

    // ------------------------- Baroclinic --------------------------
    // ~500 flops and ~20 variable sweeps per 3-D point per step.
    {
        const double ws = pts3d * 48.0;
        const double boost = cacheResidencyBoost(ws, l2, 0.10);
        prog.compute(pts3d * 520.0, std::min(1.0, 0.30 * boost),
                     tags::kBaroclinic);
        // Short strided segments (k-level sweeps over 2-D slabs)
        // keep few misses in flight: the per-core stream runs well
        // below the controller rate, so two ranks per socket do not
        // contend (Table 12's linear scaling) while remote pages
        // hurt badly (Tables 13's membind/interleave spread).
        prog.memoryCapped(pts3d * 160.0 *
                              cacheMissFraction(ws, l2 * 8.0),
                          0.14, tags::kBaroclinic);
        if (p > 1) {
            // 3-D halo: perimeter columns of all levels exchanged
            // with the four grid neighbors (periodic east-west).
            double bx = static_cast<double>(cfg_.nx) / dec.pc;
            double by = static_cast<double>(cfg_.ny) / dec.pr;
            appendGridHalo(rt, prog.prims(), rank, dec.pr, dec.pc,
                           by * cfg_.levels * 8.0 * 3.0 / 2.0,
                           bx * cfg_.levels * 8.0 * 3.0 / 2.0,
                           0xE00000ULL, tags::kBaroclinic);
        }
    }

    // ------------------------- Barotropic --------------------------
    // cfg_.solverIters CG iterations on the 2-D grid, fused.
    {
        const double iters = cfg_.solverIters;
        prog.compute(iters * pts2d * 14.0, 0.12, tags::kBarotropic);
        // The solver is stall-bound, not bandwidth-bound: short
        // vectors, dependent reductions, and halo waits hold the
        // core at ~12% of peak while leaving the memory link mostly
        // idle -- which is exactly why the paper's barotropic phase
        // keeps scaling with two ranks per socket (Table 12).
        prog.memory(iters * pts2d * 8.0 * 0.9,
                    tags::kBarotropic);
        if (p > 1) {
            // Two dot-product allreduces per iteration, latency-bound.
            SimTime lat = iters * 2.0 *
                          allReduceLatencyEstimate(rt, rank, 16.0);
            // Plus the 2-D halo's per-iteration message overheads.
            int right = (rank + 1) % p;
            lat += iters * 2.0 *
                   rt.messageOverhead(rank, right,
                                      dec.haloPoints() * 8.0);
            Delay d;
            d.seconds = lat;
            d.tag = tags::kBarotropic;
            prog.prims().push_back(d);

            // Halo volume, fused across the solve.
            double bx = static_cast<double>(cfg_.nx) / dec.pc;
            double by = static_cast<double>(cfg_.ny) / dec.pr;
            appendGridHalo(rt, prog.prims(), rank, dec.pr, dec.pc,
                           iters * by * 8.0 / 2.0,
                           iters * bx * 8.0 / 2.0, 0xF00000ULL,
                           tags::kBarotropic);
            // Synchronizing allreduce once per step.
            appendAllReduce(rt, prog.prims(), rank, 16.0, 0x1000000ULL,
                            tags::kBarotropic);
        }
    }
    return prog.take();
}

} // namespace mcscope
