/**
 * @file
 * 2-D structured-grid substrate for the ocean model: block
 * decomposition over ranks and functional stencil application with
 * periodic east-west boundaries (a shifted polar grid wraps in
 * longitude).
 */

#ifndef MCSCOPE_APPS_POP_GRID_HH
#define MCSCOPE_APPS_POP_GRID_HH

#include <cstddef>
#include <vector>

namespace mcscope {

/** A dense 2-D field, row-major (y outer, x inner). */
struct Field2d
{
    size_t nx = 0;
    size_t ny = 0;
    std::vector<double> data;

    Field2d() = default;
    Field2d(size_t nx_, size_t ny_, double init = 0.0)
        : nx(nx_), ny(ny_), data(nx_ * ny_, init)
    {
    }

    double &at(size_t x, size_t y) { return data[y * nx + x]; }
    double at(size_t x, size_t y) const { return data[y * nx + x]; }
};

/**
 * Apply the 5-point Laplacian-like operator:
 * out = center*f + w*(E + W + N + S), periodic in x, clamped in y.
 */
void applyFivePoint(const Field2d &in, Field2d &out, double center,
                    double w);

/** Decomposition of a nx x ny grid over p ranks (pr x pc blocks). */
struct BlockDecomposition
{
    int pr = 1; ///< process rows
    int pc = 1; ///< process cols
    size_t nx = 0, ny = 0;

    /** Build a near-square factorization of p. */
    static BlockDecomposition make(size_t nx, size_t ny, int p);

    /** Local interior points of one rank (balanced blocks). */
    double localPoints() const;

    /** Halo points exchanged per rank per update (4-neighbor). */
    double haloPoints() const;

    /** Number of neighbors of a typical rank. */
    int neighborCount() const;
};

} // namespace mcscope

#endif // MCSCOPE_APPS_POP_GRID_HH
