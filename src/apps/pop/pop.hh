/**
 * @file
 * Parallel Ocean Program (POP) cost model: the x1 configuration
 * (320 x 384 horizontal, 40 vertical levels, 50 time steps) behind
 * Tables 12-14 of the paper.
 *
 * Each time step has two phases:
 *  - baroclinic: 3-D nearest-neighbor stencil updates over all
 *    levels; compute/bandwidth bound, scales well (tags::kBaroclinic);
 *  - barotropic: a 2-D implicit solve by conjugate gradient, ~200
 *    latency-bound iterations with two dot-product allreduces and a
 *    4-neighbor halo exchange each (tags::kBarotropic).
 *
 * Aggregation: the solver's iterations within a step are fused into
 * one compute+memory+volume block, with per-iteration collective
 * latencies charged explicitly and one real allreduce per step for
 * synchronization (same scheme as the NAS CG model).
 */

#ifndef MCSCOPE_APPS_POP_POP_HH
#define MCSCOPE_APPS_POP_POP_HH

#include <string>

#include "apps/pop/grid.hh"
#include "kernels/workload.hh"

namespace mcscope {

/** POP benchmark configuration. */
struct PopConfig
{
    std::string name;
    size_t nx = 320;
    size_t ny = 384;
    int levels = 40;
    int steps = 50;
    int solverIters = 200; ///< CG iterations per barotropic solve
};

/** The paper's x1 configuration (one-degree, 50 steps / 2 days). */
PopConfig popX1Config();

/** POP workload over a configuration. */
class PopWorkload : public LoopWorkload
{
  public:
    explicit PopWorkload(PopConfig cfg);

    std::string name() const override { return "pop." + cfg_.name; }
    std::string signature() const override
    {
        return "pop(cfg=" + cfg_.name + ",nx=" + std::to_string(cfg_.nx) +
               ",ny=" + std::to_string(cfg_.ny) +
               ",levels=" + std::to_string(cfg_.levels) +
               ",steps=" + std::to_string(cfg_.steps) +
               ",solver_iters=" + std::to_string(cfg_.solverIters) + ")";
    }
    uint64_t iterations() const override;
    std::vector<Prim> body(const Machine &machine, const MpiRuntime &rt,
                           int rank) const override;

    const PopConfig &config() const { return cfg_; }

    /** Ocean blocks are decomposed per rank. */
    SharingDescriptor
    sharingSignature(int ranks) const override
    {
        (void)ranks;
        return SharingDescriptor::privateData();
    }
  private:
    PopConfig cfg_;
};

} // namespace mcscope

#endif // MCSCOPE_APPS_POP_POP_HH
