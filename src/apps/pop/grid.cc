#include "apps/pop/grid.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mcscope {

void
applyFivePoint(const Field2d &in, Field2d &out, double center, double w)
{
    MCSCOPE_ASSERT(in.nx == out.nx && in.ny == out.ny,
                   "stencil field shape mismatch");
    const size_t nx = in.nx;
    const size_t ny = in.ny;
    for (size_t y = 0; y < ny; ++y) {
        size_t yn = (y + 1 < ny) ? y + 1 : y;
        size_t ys = (y > 0) ? y - 1 : y;
        for (size_t x = 0; x < nx; ++x) {
            size_t xe = (x + 1) % nx;
            size_t xw = (x + nx - 1) % nx;
            out.at(x, y) = center * in.at(x, y) +
                           w * (in.at(xe, y) + in.at(xw, y) +
                                in.at(x, yn) + in.at(x, ys));
        }
    }
}

BlockDecomposition
BlockDecomposition::make(size_t nx, size_t ny, int p)
{
    MCSCOPE_ASSERT(p >= 1 && nx > 0 && ny > 0, "bad decomposition");
    BlockDecomposition d;
    d.nx = nx;
    d.ny = ny;
    // Near-square factorization: largest divisor <= sqrt(p).
    int best = 1;
    for (int f = 1; f * f <= p; ++f) {
        if (p % f == 0)
            best = f;
    }
    d.pr = best;
    d.pc = p / best;
    return d;
}

double
BlockDecomposition::localPoints() const
{
    return static_cast<double>(nx) * static_cast<double>(ny) /
           (static_cast<double>(pr) * pc);
}

double
BlockDecomposition::haloPoints() const
{
    double bx = static_cast<double>(nx) / pc;
    double by = static_cast<double>(ny) / pr;
    double halo = 0.0;
    if (pc > 1)
        halo += 2.0 * by;
    if (pr > 1)
        halo += 2.0 * bx;
    // Periodic x: even a single process column wraps, but that is
    // local copying, not communication.
    return halo;
}

int
BlockDecomposition::neighborCount() const
{
    int n = 0;
    if (pc > 1)
        n += 2;
    if (pr > 1)
        n += 2;
    return n;
}

} // namespace mcscope
