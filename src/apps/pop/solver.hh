/**
 * @file
 * The barotropic elliptic solver: a matrix-free conjugate-gradient
 * solve of the 2-D implicit free-surface system, the latency-critical
 * phase of POP (Section 4.2 of the paper).
 */

#ifndef MCSCOPE_APPS_POP_SOLVER_HH
#define MCSCOPE_APPS_POP_SOLVER_HH

#include "apps/pop/grid.hh"

namespace mcscope {

/** Outcome of a barotropic solve. */
struct BarotropicResult
{
    Field2d solution;
    double residual = 0.0;
    int iterations = 0;
};

/**
 * Solve (I - k * Laplacian) x = b with matrix-free CG (periodic in x).
 * The operator is SPD for k > 0.
 *
 * @param b        right-hand side.
 * @param k        implicitness coefficient.
 * @param max_iter iteration cap.
 * @param tol      relative residual target.
 */
BarotropicResult solveBarotropic(const Field2d &b, double k, int max_iter,
                                 double tol);

/**
 * The same solve with POP's diagonal (Jacobi) preconditioner -- the
 * production configuration of the barotropic solver.  Same solution,
 * fewer iterations on stiff systems.
 */
BarotropicResult solveBarotropicPreconditioned(const Field2d &b, double k,
                                               int max_iter, double tol);

/** Matrix-free operator y = (I - k L) x used by the solver. */
void barotropicOperator(const Field2d &x, Field2d &y, double k);

} // namespace mcscope

#endif // MCSCOPE_APPS_POP_SOLVER_HH
