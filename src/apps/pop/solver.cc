#include "apps/pop/solver.hh"

#include <cmath>

#include "util/logging.hh"

namespace mcscope {

void
barotropicOperator(const Field2d &x, Field2d &y, double k)
{
    // (I - k L) x where L is the 5-point Laplacian.
    applyFivePoint(x, y, 1.0 + 4.0 * k, -k);
}

namespace {

double
dot(const Field2d &a, const Field2d &b)
{
    double acc = 0.0;
    for (size_t i = 0; i < a.data.size(); ++i)
        acc += a.data[i] * b.data[i];
    return acc;
}

} // namespace

BarotropicResult
solveBarotropicPreconditioned(const Field2d &b, double k, int max_iter,
                              double tol)
{
    MCSCOPE_ASSERT(k > 0.0, "implicitness must be positive");
    BarotropicResult res;
    res.solution = Field2d(b.nx, b.ny, 0.0);

    // Diagonal of (I - k L) is constant: 1 + 4k.
    const double dinv = 1.0 / (1.0 + 4.0 * k);

    Field2d r = b;
    Field2d z(b.nx, b.ny);
    Field2d p(b.nx, b.ny);
    Field2d ap(b.nx, b.ny);
    for (size_t i = 0; i < r.data.size(); ++i)
        p.data[i] = z.data[i] = dinv * r.data[i];
    double rz = dot(r, z);
    double b_norm = std::sqrt(std::max(dot(b, b), 1e-300));

    for (int it = 0; it < max_iter; ++it) {
        if (std::sqrt(dot(r, r)) / b_norm <= tol)
            break;
        barotropicOperator(p, ap, k);
        double pap = dot(p, ap);
        MCSCOPE_ASSERT(pap > 0.0, "barotropic operator lost SPD");
        double alpha = rz / pap;
        for (size_t i = 0; i < r.data.size(); ++i) {
            res.solution.data[i] += alpha * p.data[i];
            r.data[i] -= alpha * ap.data[i];
            z.data[i] = dinv * r.data[i];
        }
        double rz_new = dot(r, z);
        double beta = rz_new / rz;
        for (size_t i = 0; i < p.data.size(); ++i)
            p.data[i] = z.data[i] + beta * p.data[i];
        rz = rz_new;
        res.iterations = it + 1;
    }
    res.residual = std::sqrt(dot(r, r)) / b_norm;
    return res;
}

BarotropicResult
solveBarotropic(const Field2d &b, double k, int max_iter, double tol)
{
    MCSCOPE_ASSERT(k > 0.0, "implicitness must be positive");
    BarotropicResult res;
    res.solution = Field2d(b.nx, b.ny, 0.0);

    Field2d r = b;
    Field2d p = b;
    Field2d ap(b.nx, b.ny);
    double rr = dot(r, r);
    double b_norm = std::sqrt(std::max(rr, 1e-300));

    for (int it = 0; it < max_iter; ++it) {
        if (std::sqrt(rr) / b_norm <= tol)
            break;
        barotropicOperator(p, ap, k);
        double pap = dot(p, ap);
        MCSCOPE_ASSERT(pap > 0.0, "barotropic operator lost SPD");
        double alpha = rr / pap;
        for (size_t i = 0; i < r.data.size(); ++i) {
            res.solution.data[i] += alpha * p.data[i];
            r.data[i] -= alpha * ap.data[i];
        }
        double rr_new = dot(r, r);
        double beta = rr_new / rr;
        for (size_t i = 0; i < p.data.size(); ++i)
            p.data[i] = r.data[i] + beta * p.data[i];
        rr = rr_new;
        res.iterations = it + 1;
    }
    res.residual = std::sqrt(rr) / b_norm;
    return res;
}

} // namespace mcscope
