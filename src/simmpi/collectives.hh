/**
 * @file
 * Collective-operation builders on top of MpiRuntime.
 *
 * Each function appends, to ONE rank's primitive sequence, that rank's
 * share of a collective.  All ranks of the job must call the same
 * builder with the same key_base for the collective to match up.
 *
 * Key-space contract: a collective consumes keys in
 * [key_base, key_base + (rounds << 12)); space key_bases by at least
 * 1 << 20 within one loop body.
 */

#ifndef MCSCOPE_SIMMPI_COLLECTIVES_HH
#define MCSCOPE_SIMMPI_COLLECTIVES_HH

#include <cstdint>
#include <vector>

#include "sim/prim.hh"
#include "simmpi/comm.hh"

namespace mcscope {

/** True when n is a power of two. */
bool isPowerOfTwo(int n);

/**
 * Allreduce of a `bytes`-sized buffer: recursive doubling for
 * power-of-two job sizes (log2(p) pairwise exchange rounds), a ring
 * reduce-scatter + allgather otherwise.
 */
void appendAllReduce(const MpiRuntime &rt, std::vector<Prim> &out,
                     int rank, double bytes, uint64_t key_base,
                     int tag = 0);

/**
 * All-to-all personalized exchange, `bytes_per_pair` to every other
 * rank: XOR-pairing rounds for power-of-two sizes, ring shifts
 * otherwise.
 */
void appendAllToAll(const MpiRuntime &rt, std::vector<Prim> &out,
                    int rank, double bytes_per_pair, uint64_t key_base,
                    int tag = 0);

/**
 * Ring shift (HPCC "ring" pattern): send `bytes` to (rank+1) mod p,
 * receive from (rank-1) mod p.  Even ranks send first, odd ranks
 * receive first, so the ring never deadlocks.
 */
void appendRingShift(const MpiRuntime &rt, std::vector<Prim> &out,
                     int rank, double bytes, uint64_t key_base,
                     int tag = 0);

/**
 * IMB "Exchange" pattern: bidirectional exchange with both ring
 * neighbors, realized as two rounds of disjoint pairwise exchanges.
 */
void appendExchange(const MpiRuntime &rt, std::vector<Prim> &out,
                    int rank, double bytes, uint64_t key_base,
                    int tag = 0);

/**
 * 2-D grid halo exchange: the job is viewed as a `rows` x `cols`
 * process grid (rows * cols == ranks); each rank exchanges
 * `bytes_ew` with its east/west neighbors (periodic) and `bytes_ns`
 * with its north/south neighbors (non-periodic), the pattern of
 * POP's stencils and every block-decomposed solver.
 */
void appendGridHalo(const MpiRuntime &rt, std::vector<Prim> &out,
                    int rank, int rows, int cols, double bytes_ew,
                    double bytes_ns, uint64_t key_base, int tag = 0);

/**
 * Number of point-to-point messages rank `rank` sends for one
 * allreduce (diagnostics / tests).
 */
int allReduceMessageCount(int ranks);

/**
 * Analytic latency of one small-message allreduce as seen from
 * `rank`: the sum of per-round message overheads.  Used by cost
 * models that aggregate thousands of latency-bound collectives into
 * a single Delay (the volume is carried separately).
 */
SimTime allReduceLatencyEstimate(const MpiRuntime &rt, int rank,
                                 double bytes);

} // namespace mcscope

#endif // MCSCOPE_SIMMPI_COLLECTIVES_HH
