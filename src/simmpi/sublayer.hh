/**
 * @file
 * MPI shared-memory sub-layer models: the locking mechanism guarding
 * the intra-node message queues.
 *
 * The paper's LAM runs contrast SysV (System V semaphores, a syscall
 * per operation -- expensive on 2006 Linux) against USysV (user-space
 * spin locks).  The sub-layer cost lands on every message, which is
 * why SysV wrecks small-message benchmarks (RandomAccess, PTRANS,
 * latency) while barely affecting large-message FFT (Figures 11-13).
 */

#ifndef MCSCOPE_SIMMPI_SUBLAYER_HH
#define MCSCOPE_SIMMPI_SUBLAYER_HH

#include <string>
#include <vector>

#include "sim/time.hh"

namespace mcscope {

/** The locking mechanism of the shared-memory message queues. */
enum class SubLayer
{
    /** User-space spin locks. */
    USysV,

    /** System V semaphores (semop syscall per lock operation). */
    SysV,
};

/** Cost model for one sub-layer. */
struct SubLayerModel
{
    std::string name;

    /** Cost of one lock/unlock pair on the message queue. */
    SimTime lockPairCost = 0.0;
};

/** Built-in model for a sub-layer. */
SubLayerModel subLayerModel(SubLayer layer);

/** Display name. */
std::string subLayerName(SubLayer layer);

/** Both sub-layers, USysV first. */
std::vector<SubLayer> allSubLayers();

} // namespace mcscope

#endif // MCSCOPE_SIMMPI_SUBLAYER_HH
