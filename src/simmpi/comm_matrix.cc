#include "simmpi/comm_matrix.hh"

#include <sstream>

#include "simmpi/comm.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "util/table.hh"

namespace mcscope {

CommMatrix::CommMatrix(int ranks)
    : ranks_(ranks),
      bytes_(static_cast<size_t>(ranks) * ranks, 0.0),
      messages_(static_cast<size_t>(ranks) * ranks, 0)
{
    MCSCOPE_ASSERT(ranks >= 1, "comm matrix needs at least one rank");
}

void
CommMatrix::record(int src, int dst, double bytes)
{
    MCSCOPE_ASSERT(src >= 0 && src < ranks_ && dst >= 0 &&
                       dst < ranks_,
                   "bad pair (", src, ",", dst, ")");
    bytes_[static_cast<size_t>(src) * ranks_ + dst] += bytes;
    ++messages_[static_cast<size_t>(src) * ranks_ + dst];
}

double
CommMatrix::bytes(int src, int dst) const
{
    MCSCOPE_ASSERT(src >= 0 && src < ranks_ && dst >= 0 &&
                       dst < ranks_,
                   "bad pair (", src, ",", dst, ")");
    return bytes_[static_cast<size_t>(src) * ranks_ + dst];
}

uint64_t
CommMatrix::messages(int src, int dst) const
{
    MCSCOPE_ASSERT(src >= 0 && src < ranks_ && dst >= 0 &&
                       dst < ranks_,
                   "bad pair (", src, ",", dst, ")");
    return messages_[static_cast<size_t>(src) * ranks_ + dst];
}

double
CommMatrix::totalBytes() const
{
    double acc = 0.0;
    for (double b : bytes_)
        acc += b;
    return acc;
}

uint64_t
CommMatrix::totalMessages() const
{
    uint64_t acc = 0;
    for (uint64_t m : messages_)
        acc += m;
    return acc;
}

std::vector<double>
CommMatrix::bytesByHops(const MpiRuntime &rt) const
{
    MCSCOPE_ASSERT(rt.ranks() == ranks_,
                   "runtime job size does not match the matrix");
    const Machine &m = rt.machine();
    int max_hops = m.topology().diameter();
    std::vector<double> hist(max_hops + 1, 0.0);
    for (int s = 0; s < ranks_; ++s) {
        for (int d = 0; d < ranks_; ++d) {
            if (s == d)
                continue;
            int hops = m.hopsBetweenCores(rt.coreOf(s), rt.coreOf(d));
            hist[hops] += bytes(s, d);
        }
    }
    return hist;
}

std::string
CommMatrix::str() const
{
    std::vector<std::string> header = {"src\\dst"};
    for (int d = 0; d < ranks_; ++d)
        header.push_back(std::to_string(d));
    TextTable t(header);
    for (int s = 0; s < ranks_; ++s) {
        std::vector<std::string> row = {std::to_string(s)};
        for (int d = 0; d < ranks_; ++d)
            row.push_back(formatBytes(bytes(s, d)));
        t.addRow(std::move(row));
    }
    return t.str();
}

} // namespace mcscope
