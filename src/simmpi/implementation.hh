/**
 * @file
 * MPI implementation personalities.
 *
 * Section 3.4 of the paper compares MPICH2 1.0.3, LAM 7.1.2, and
 * OpenMPI 1.0.1 on intra-node PingPong/Exchange.  The observed
 * ordering: MPICH2 pays a high small-message overhead but wins for
 * large messages; LAM wins below ~16 KB; OpenMPI wins at intermediate
 * sizes.  We encode each implementation as a small-message software
 * overhead plus a size-dependent copy efficiency applied to the
 * machine's shared-memory copy bandwidth.
 */

#ifndef MCSCOPE_SIMMPI_IMPLEMENTATION_HH
#define MCSCOPE_SIMMPI_IMPLEMENTATION_HH

#include <string>
#include <vector>

#include "sim/time.hh"

namespace mcscope {

/** Which MPI library personality to model. */
enum class MpiImpl
{
    Mpich2,
    Lam,
    OpenMpi,
};

/** Parameter set describing one implementation. */
struct MpiImplModel
{
    std::string name;

    /** Per-message software overhead (one way, excluding locks). */
    SimTime baseLatency = 0.0;

    /** Eager/rendezvous protocol switch point, bytes. */
    double eagerThreshold = 0.0;

    /** Extra handshake cost above the eager threshold. */
    SimTime rendezvousExtra = 0.0;

    /** Copy efficiency for messages below 16 KB. */
    double effSmall = 1.0;

    /** Copy efficiency for messages in [16 KB, 256 KB). */
    double effMid = 1.0;

    /** Copy efficiency for messages >= 256 KB. */
    double effLarge = 1.0;

    /**
     * Smoothly interpolated copy efficiency at `bytes` (log-linear
     * blend between the three plateaus).
     */
    double copyEfficiency(double bytes) const;
};

/** Built-in personality for an implementation. */
MpiImplModel mpiImplModel(MpiImpl impl);

/** Display name. */
std::string mpiImplName(MpiImpl impl);

/** All modeled implementations. */
std::vector<MpiImpl> allMpiImpls();

} // namespace mcscope

#endif // MCSCOPE_SIMMPI_IMPLEMENTATION_HH
