#include "simmpi/comm.hh"

#include <algorithm>

#include "simmpi/comm_matrix.hh"
#include "util/logging.hh"

namespace mcscope {

MpiRuntime::MpiRuntime(const Machine &machine, const Placement &placement,
                       MpiImpl impl, SubLayer sublayer)
    : machine_(&machine),
      placement_(&placement),
      implKind_(impl),
      sublayerKind_(sublayer),
      impl_(mpiImplModel(impl)),
      sublayer_(subLayerModel(sublayer))
{
    MCSCOPE_ASSERT(placement.ranks() >= 1, "empty placement");
}

int
MpiRuntime::coreOf(int rank) const
{
    return placement_->binding(rank).core;
}

SimTime
MpiRuntime::messageOverhead(int src_rank, int dst_rank,
                            double bytes) const
{
    int src_core = coreOf(src_rank);
    int dst_core = coreOf(dst_rank);
    int hops = machine_->hopsBetweenCores(src_core, dst_core);

    // Software path + two lock/unlock pairs (enqueue + dequeue).
    SimTime sw = impl_.baseLatency + 2.0 * sublayer_.lockPairCost;
    if (bytes > impl_.eagerThreshold)
        sw += impl_.rendezvousExtra;
    if (hops == 0) {
        // Same-die fast path: cache-to-cache, no HT traversal.
        sw *= machine_->config().sameDieLatencyFactor;
    }
    // Wire latency priced per link class (HT vs cluster fabric);
    // identical to hops * htHopLatency on fabric-less machines.
    SimTime lat = sw + machine_->pathLatency(machine_->socketOf(src_core),
                                             machine_->socketOf(dst_core));
    return lat * latencyNoise_;
}

Work
MpiRuntime::transfer(int src_rank, int dst_rank, double bytes,
                     int tag) const
{
    int buffer = placement_->commBufferNode(src_rank);
    Work w = machine_->transferWork(coreOf(src_rank), coreOf(dst_rank),
                                    buffer, bytes, tag);
    w.rateCap *= impl_.copyEfficiency(bytes);
    return w;
}

double
MpiRuntime::transferBandwidth(int src_rank, int dst_rank,
                              double bytes) const
{
    return transfer(src_rank, dst_rank, bytes).rateCap;
}

void
MpiRuntime::appendSend(std::vector<Prim> &out, int rank, int peer,
                       double bytes, uint64_t key, int tag) const
{
    MCSCOPE_ASSERT(rank != peer, "send to self (rank ", rank, ")");
    if (commMatrix_)
        commMatrix_->record(rank, peer, bytes);
    Delay d;
    d.seconds = messageOverhead(rank, peer, bytes);
    d.tag = tag;
    out.push_back(d);

    Rendezvous r;
    r.key = key;
    r.carrier = true;
    r.transfer = transfer(rank, peer, bytes, tag);
    r.tag = tag;
    out.push_back(r);
}

void
MpiRuntime::appendRecv(std::vector<Prim> &out, int rank, int peer,
                       double bytes, uint64_t key, int tag) const
{
    MCSCOPE_ASSERT(rank != peer, "recv from self (rank ", rank, ")");
    Delay d;
    d.seconds = messageOverhead(peer, rank, bytes);
    d.tag = tag;
    out.push_back(d);

    Rendezvous r;
    r.key = key;
    r.carrier = false;
    r.tag = tag;
    out.push_back(r);
}

void
MpiRuntime::appendSendRecv(std::vector<Prim> &out, int rank, int peer,
                           double bytes, uint64_t key, int tag) const
{
    MCSCOPE_ASSERT(rank != peer, "sendrecv with self (rank ", rank, ")");
    if (commMatrix_)
        commMatrix_->record(rank, peer, bytes);
    Delay d;
    d.seconds = messageOverhead(rank, peer, bytes);
    d.tag = tag;
    out.push_back(d);

    Rendezvous r;
    r.key = key;
    r.tag = tag;
    if (rank < peer) {
        r.carrier = true;
        r.transfer = transfer(rank, peer, 2.0 * bytes, tag);
    } else {
        r.carrier = false;
    }
    out.push_back(r);
}

void
MpiRuntime::appendBarrier(std::vector<Prim> &out, uint64_t key,
                          int tag) const
{
    SyncAll s;
    s.key = key;
    s.expected = ranks();
    s.tag = tag;
    out.push_back(s);
}

uint64_t
MpiRuntime::pairKey(uint64_t base, int round, int a, int b)
{
    MCSCOPE_ASSERT(a >= 0 && b >= 0 && a < 64 && b < 64 && a != b,
                   "bad pair (", a, ",", b, ")");
    int lo = std::min(a, b);
    int hi = std::max(a, b);
    return base + (static_cast<uint64_t>(round) << 12) +
           static_cast<uint64_t>(lo * 64 + hi);
}

} // namespace mcscope
