#include "simmpi/collectives.hh"

#include <cmath>

#include "util/logging.hh"

namespace mcscope {

bool
isPowerOfTwo(int n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

namespace {

/**
 * Pairwise exchange along one chain/ring of `n` members with rank
 * stride `stride`: the disjoint-round pairing of appendExchange,
 * generalized so grid halos can run it per row and per column.
 */
void
chainExchange(const MpiRuntime &rt, std::vector<Prim> &out, int rank,
              int idx, int n, int stride, bool periodic, double bytes,
              uint64_t key_base, int tag)
{
    if (n <= 1)
        return;
    auto xchg = [&](int peer_idx, int round) {
        int peer = rank + (peer_idx - idx) * stride;
        rt.appendSendRecv(out, rank, peer, bytes,
                          MpiRuntime::pairKey(key_base, round, rank,
                                              peer),
                          tag);
    };
    if (n == 2) {
        xchg(1 - idx, 0);
        if (periodic)
            xchg(1 - idx, 1);
        return;
    }
    if (idx % 2 == 0 && idx + 1 < n)
        xchg(idx + 1, 0);
    else if (idx % 2 == 1)
        xchg(idx - 1, 0);

    if (idx % 2 == 1 && idx + 1 < n)
        xchg(idx + 1, 1);
    else if (idx % 2 == 0 && idx > 0)
        xchg(idx - 1, 1);

    if (periodic && (idx == 0 || idx == n - 1)) {
        int other = idx == 0 ? n - 1 : 0;
        xchg(other, n % 2 == 0 ? 3 : 4);
    }
}

} // namespace

void
appendGridHalo(const MpiRuntime &rt, std::vector<Prim> &out, int rank,
               int rows, int cols, double bytes_ew, double bytes_ns,
               uint64_t key_base, int tag)
{
    MCSCOPE_ASSERT(rows >= 1 && cols >= 1 &&
                       rows * cols == rt.ranks(),
                   "grid halo shape ", rows, "x", cols,
                   " does not cover ", rt.ranks(), " ranks");
    int row = rank / cols;
    int col = rank % cols;
    // East-west: periodic ring within the row (longitude wraps).
    chainExchange(rt, out, rank, col, cols, 1, /*periodic=*/true,
                  bytes_ew, key_base, tag);
    // North-south: open chain within the column.
    chainExchange(rt, out, rank, row, rows, cols, /*periodic=*/false,
                  bytes_ns, key_base + (1ULL << 18), tag);
}

int
allReduceMessageCount(int ranks)
{
    MCSCOPE_ASSERT(ranks >= 1, "bad rank count");
    if (ranks == 1)
        return 0;
    if (isPowerOfTwo(ranks)) {
        int rounds = 0;
        for (int v = ranks; v > 1; v >>= 1)
            ++rounds;
        return rounds;
    }
    return 2 * (ranks - 1);
}

SimTime
allReduceLatencyEstimate(const MpiRuntime &rt, int rank, double bytes)
{
    const int p = rt.ranks();
    if (p == 1)
        return 0.0;
    SimTime total = 0.0;
    if (isPowerOfTwo(p)) {
        for (int mask = 1; mask < p; mask <<= 1)
            total += rt.messageOverhead(rank, rank ^ mask, bytes);
        return total;
    }
    int right = (rank + 1) % p;
    return 2.0 * (p - 1) * rt.messageOverhead(rank, right, bytes);
}

void
appendAllReduce(const MpiRuntime &rt, std::vector<Prim> &out, int rank,
                double bytes, uint64_t key_base, int tag)
{
    const int p = rt.ranks();
    if (p == 1)
        return;
    if (isPowerOfTwo(p)) {
        int round = 0;
        for (int mask = 1; mask < p; mask <<= 1, ++round) {
            int peer = rank ^ mask;
            rt.appendSendRecv(out, rank, peer, bytes,
                              MpiRuntime::pairKey(key_base, round, rank,
                                                  peer),
                              tag);
        }
        return;
    }
    // Ring reduce-scatter + allgather: 2(p-1) shifts of bytes/p.
    double chunk = bytes / p;
    for (int round = 0; round < 2 * (p - 1); ++round) {
        appendRingShift(rt, out, rank,
                        chunk,
                        key_base + (static_cast<uint64_t>(round) << 12),
                        tag);
    }
}

void
appendAllToAll(const MpiRuntime &rt, std::vector<Prim> &out, int rank,
               double bytes_per_pair, uint64_t key_base, int tag)
{
    const int p = rt.ranks();
    if (p == 1)
        return;
    if (isPowerOfTwo(p)) {
        for (int round = 1; round < p; ++round) {
            int peer = rank ^ round;
            rt.appendSendRecv(out, rank, peer, bytes_per_pair,
                              MpiRuntime::pairKey(key_base, round, rank,
                                                  peer),
                              tag);
        }
        return;
    }
    // Ring realization: p-1 shifts, each forwarding one rank's block.
    for (int round = 0; round < p - 1; ++round) {
        appendRingShift(rt, out, rank, bytes_per_pair,
                        key_base + (static_cast<uint64_t>(round) << 12),
                        tag);
    }
}

void
appendRingShift(const MpiRuntime &rt, std::vector<Prim> &out, int rank,
                double bytes, uint64_t key_base, int tag)
{
    const int p = rt.ranks();
    if (p == 1)
        return;
    int right = (rank + 1) % p;
    int left = (rank - 1 + p) % p;
    uint64_t send_key = MpiRuntime::pairKey(key_base, 0, rank, right);
    uint64_t recv_key = MpiRuntime::pairKey(key_base, 0, left, rank);
    if (rank % 2 == 0) {
        rt.appendSend(out, rank, right, bytes, send_key, tag);
        rt.appendRecv(out, rank, left, bytes, recv_key, tag);
    } else {
        rt.appendRecv(out, rank, left, bytes, recv_key, tag);
        rt.appendSend(out, rank, right, bytes, send_key, tag);
    }
}

void
appendExchange(const MpiRuntime &rt, std::vector<Prim> &out, int rank,
               double bytes, uint64_t key_base, int tag)
{
    const int p = rt.ranks();
    if (p == 1)
        return;
    // Disjoint pairwise rounds covering both ring neighbors:
    //   round 0: (0,1), (2,3), ...
    //   round 1: (1,2), (3,4), ..., plus the (p-1, 0) wrap when p is
    //            even (it closes the alternation consistently);
    //   round 2: the (p-1, 0) wrap for odd p, where both endpoints
    //            are even-ranked and cannot pair earlier.
    auto exchange_with = [&](int peer, int round) {
        rt.appendSendRecv(out, rank, peer, bytes,
                          MpiRuntime::pairKey(key_base, round, rank,
                                              peer),
                          tag);
    };
    if (p == 2) {
        // Left and right neighbor coincide: two exchanges.
        exchange_with(1 - rank, 0);
        exchange_with(1 - rank, 1);
        return;
    }
    if (rank % 2 == 0 && rank + 1 < p)
        exchange_with(rank + 1, 0);
    else if (rank % 2 == 1)
        exchange_with(rank - 1, 0);

    if (rank % 2 == 1 && rank + 1 < p)
        exchange_with(rank + 1, 1);
    else if (rank % 2 == 0 && rank > 0)
        exchange_with(rank - 1, 1);
    if (p % 2 == 0 && p > 2 && (rank == 0 || rank == p - 1))
        exchange_with(rank == 0 ? p - 1 : 0, 3);

    if (p % 2 == 1 && (rank == 0 || rank == p - 1))
        exchange_with(rank == 0 ? p - 1 : 0, 4);
}

} // namespace mcscope
