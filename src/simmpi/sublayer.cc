#include "simmpi/sublayer.hh"

#include "util/logging.hh"

namespace mcscope {

SubLayerModel
subLayerModel(SubLayer layer)
{
    switch (layer) {
      case SubLayer::USysV:
        // Uncontended user-space spin lock: a couple of cache-line
        // transfers.
        return {"usysv", units::us(0.15)};
      case SubLayer::SysV:
        // semop() syscall both on enqueue and dequeue; 2006-era Linux
        // made this painfully slow (the paper calls out "the high cost
        // of the Linux implementation of the SystemV semaphore").
        return {"sysv", units::us(5.5)};
    }
    MCSCOPE_PANIC("bad SubLayer");
}

std::string
subLayerName(SubLayer layer)
{
    return subLayerModel(layer).name;
}

std::vector<SubLayer>
allSubLayers()
{
    return {SubLayer::USysV, SubLayer::SysV};
}

} // namespace mcscope
