/**
 * @file
 * The simulated intra-node MPI runtime: translates ranks' sends and
 * receives into engine primitives, pricing each message as
 *
 *   software overhead (implementation personality)
 * + lock operations   (SysV / USysV sub-layer)
 * + hop latency       (HyperTransport route)
 * + payload transfer  (a fluid flow through the shared buffer's
 *                      memory controller and the HT path, capped by
 *                      the double-copy bandwidth and the
 *                      implementation's size-dependent copy
 *                      efficiency)
 *
 * Placement decides which cores talk and where shared buffers live,
 * which is how numactl policies reach into communication performance.
 */

#ifndef MCSCOPE_SIMMPI_COMM_HH
#define MCSCOPE_SIMMPI_COMM_HH

#include <cstdint>
#include <vector>

#include "affinity/placement.hh"
#include "machine/machine.hh"
#include "sim/prim.hh"
#include "simmpi/implementation.hh"
#include "simmpi/sublayer.hh"

namespace mcscope {

class CommMatrix;

/**
 * Message-passing cost model bound to one machine + placement.
 *
 * The runtime does not own tasks; workload builders call the append*
 * methods to emit the per-rank primitive sequences that realize each
 * communication operation.
 */
class MpiRuntime
{
  public:
    MpiRuntime(const Machine &machine, const Placement &placement,
               MpiImpl impl = MpiImpl::OpenMpi,
               SubLayer sublayer = SubLayer::USysV);

    /** The implementation personality this runtime was built with. */
    MpiImpl implKind() const { return implKind_; }

    /** The sub-layer this runtime was built with. */
    SubLayer subLayerKind() const { return sublayerKind_; }

    /** Number of ranks in the job. */
    int ranks() const { return placement_->ranks(); }

    const Machine &machine() const { return *machine_; }
    const Placement &placement() const { return *placement_; }
    const MpiImplModel &implModel() const { return impl_; }
    const SubLayerModel &subLayer() const { return sublayer_; }

    /** Core hosting `rank`. */
    int coreOf(int rank) const;

    /**
     * Extra multiplier on message latency, modeling scheduling noise
     * (unpinned endpoints, parked processes).  1.0 = quiet system.
     */
    void setLatencyNoiseFactor(double f) { latencyNoise_ = f; }

    /**
     * Attach a communication-matrix recorder: every message emitted
     * through the append* builders is tallied into it.  The matrix
     * must outlive the runtime; pass nullptr to detach.
     */
    void setCommMatrix(CommMatrix *matrix) { commMatrix_ = matrix; }

    /**
     * One-way message overhead (software + locks + hops), excluding
     * payload transfer time.
     */
    SimTime messageOverhead(int src_rank, int dst_rank,
                            double bytes) const;

    /** Payload transfer Work for a message. */
    Work transfer(int src_rank, int dst_rank, double bytes,
                  int tag = 0) const;

    /**
     * Effective payload bandwidth (bytes/s) for the transfer Work --
     * the rate it would achieve alone on an idle machine.
     */
    double transferBandwidth(int src_rank, int dst_rank,
                             double bytes) const;

    /** Append a blocking send to `rank`'s program. */
    void appendSend(std::vector<Prim> &out, int rank, int peer,
                    double bytes, uint64_t key, int tag = 0) const;

    /** Append a blocking receive to `rank`'s program. */
    void appendRecv(std::vector<Prim> &out, int rank, int peer,
                    double bytes, uint64_t key, int tag = 0) const;

    /**
     * Append a pairwise bidirectional exchange (MPI_Sendrecv with the
     * same partner both ways).  Both partners must call this with the
     * same key; the lower rank carries a 2x-volume transfer.
     */
    void appendSendRecv(std::vector<Prim> &out, int rank, int peer,
                        double bytes, uint64_t key, int tag = 0) const;

    /** Append a full-job barrier. */
    void appendBarrier(std::vector<Prim> &out, uint64_t key,
                       int tag = 0) const;

    /**
     * Deterministic key for (round, unordered pair) under `base`.
     * Collectives consume key space [base, base + (rounds << 12));
     * call sites should space bases by at least 1 << 20.
     */
    static uint64_t pairKey(uint64_t base, int round, int a, int b);

  private:
    const Machine *machine_;
    const Placement *placement_;
    MpiImpl implKind_;
    SubLayer sublayerKind_;
    MpiImplModel impl_;
    SubLayerModel sublayer_;
    double latencyNoise_ = 1.0;
    CommMatrix *commMatrix_ = nullptr;
};

} // namespace mcscope

#endif // MCSCOPE_SIMMPI_COMM_HH
