/**
 * @file
 * Communication-matrix recording: per rank-pair message counts and
 * byte volumes, and their projection onto the socket grid and the
 * HT-hop histogram.  This is the instrument behind the paper's
 * topology arguments ("comparing the Ring and PingPong bandwidths
 * clearly exposes the topology and congestion effects on the
 * HT8501's HyperTransport ladder").
 */

#ifndef MCSCOPE_SIMMPI_COMM_MATRIX_HH
#define MCSCOPE_SIMMPI_COMM_MATRIX_HH

#include <string>
#include <vector>

namespace mcscope {

class Machine;
class MpiRuntime;

/** Accumulated communication statistics for one job. */
class CommMatrix
{
  public:
    /** @param ranks job size. */
    explicit CommMatrix(int ranks);

    /** Record one message (called by MpiRuntime when attached). */
    void record(int src, int dst, double bytes);

    int ranks() const { return ranks_; }

    /** Bytes sent from `src` to `dst` (directed). */
    double bytes(int src, int dst) const;

    /** Messages sent from `src` to `dst` (directed). */
    uint64_t messages(int src, int dst) const;

    /** Total bytes over all pairs. */
    double totalBytes() const;

    /** Total messages over all pairs. */
    uint64_t totalMessages() const;

    /**
     * Histogram of bytes by HT hop distance under the runtime's
     * placement: index h = bytes between ranks h hops apart
     * (index 0 = same socket).
     */
    std::vector<double> bytesByHops(const MpiRuntime &rt) const;

    /** Render the rank-pair byte matrix as text (KB cells). */
    std::string str() const;

  private:
    int ranks_;
    std::vector<double> bytes_;
    std::vector<uint64_t> messages_;
};

} // namespace mcscope

#endif // MCSCOPE_SIMMPI_COMM_MATRIX_HH
