#include "simmpi/implementation.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mcscope {

double
MpiImplModel::copyEfficiency(double bytes) const
{
    constexpr double kSmall = 16.0 * 1024.0;
    constexpr double kLarge = 256.0 * 1024.0;
    if (bytes <= 0.0)
        return effSmall;
    if (bytes <= kSmall / 2.0)
        return effSmall;
    if (bytes >= kLarge * 2.0)
        return effLarge;
    // Log-linear blend through the mid plateau.
    double x = std::log2(bytes);
    double x0 = std::log2(kSmall / 2.0);
    double x1 = std::log2(kSmall * 2.0);
    double x2 = std::log2(kLarge / 2.0);
    double x3 = std::log2(kLarge * 2.0);
    if (x < x1) {
        double t = (x - x0) / (x1 - x0);
        return effSmall + t * (effMid - effSmall);
    }
    if (x < x2)
        return effMid;
    double t = (x - x2) / (x3 - x2);
    return effMid + t * (effLarge - effMid);
}

MpiImplModel
mpiImplModel(MpiImpl impl)
{
    MpiImplModel m;
    switch (impl) {
      case MpiImpl::Mpich2:
        // High small-message overhead; best large-message pipelining.
        m.name = "MPICH2";
        m.baseLatency = units::us(2.1);
        m.eagerThreshold = 128.0 * 1024.0;
        m.rendezvousExtra = units::us(1.5);
        m.effSmall = 0.62;
        m.effMid = 0.86;
        m.effLarge = 0.96;
        return m;
      case MpiImpl::Lam:
        // Lowest latency and the best copy path below 16 KB.
        m.name = "LAM";
        m.baseLatency = units::us(0.85);
        m.eagerThreshold = 64.0 * 1024.0;
        m.rendezvousExtra = units::us(1.0);
        m.effSmall = 0.95;
        m.effMid = 0.78;
        m.effLarge = 0.72;
        return m;
      case MpiImpl::OpenMpi:
        // Solid default configuration; wins at intermediate sizes.
        m.name = "OpenMPI";
        m.baseLatency = units::us(1.15);
        m.eagerThreshold = 96.0 * 1024.0;
        m.rendezvousExtra = units::us(1.2);
        m.effSmall = 0.80;
        m.effMid = 0.93;
        m.effLarge = 0.85;
        return m;
    }
    MCSCOPE_PANIC("bad MpiImpl");
}

std::string
mpiImplName(MpiImpl impl)
{
    return mpiImplModel(impl).name;
}

std::vector<MpiImpl>
allMpiImpls()
{
    return {MpiImpl::Mpich2, MpiImpl::Lam, MpiImpl::OpenMpi};
}

} // namespace mcscope
