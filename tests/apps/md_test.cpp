/**
 * @file
 * Functional tests for the molecular-dynamics substrate: force
 * fields, cell lists, the Verlet integrator, PME, and GB.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/md/cells.hh"
#include "apps/md/engine.hh"
#include "apps/md/forcefield.hh"
#include "apps/md/gb.hh"
#include "apps/md/pme.hh"

namespace mcscope {
namespace {

TEST(ForceField, LjMinimumAtTwoSixthSigma)
{
    LjParams p;
    double rmin2 = std::pow(2.0, 1.0 / 3.0) * p.sigma * p.sigma;
    // Force vanishes at the minimum, energy is -epsilon there.
    EXPECT_NEAR(ljForceOverR(p, rmin2), 0.0, 1e-12);
    EXPECT_NEAR(ljEnergy(p, rmin2), -p.epsilon, 1e-12);
    // Repulsive inside, attractive outside.
    EXPECT_GT(ljForceOverR(p, 0.8 * rmin2), 0.0);
    EXPECT_LT(ljForceOverR(p, 1.3 * rmin2), 0.0);
    // Cutoff kills interaction.
    EXPECT_DOUBLE_EQ(ljEnergy(p, p.cutoff * p.cutoff * 1.01), 0.0);
}

TEST(ForceField, BondHarmonic)
{
    BondParams b;
    EXPECT_DOUBLE_EQ(bondEnergy(b, b.r0), 0.0);
    EXPECT_GT(bondEnergy(b, b.r0 * 1.2), 0.0);
    // Restoring force: negative (inward) when stretched.
    EXPECT_LT(bondForceOverR(b, b.r0 * 1.2), 0.0);
    EXPECT_GT(bondForceOverR(b, b.r0 * 0.8), 0.0);
}

TEST(ForceField, EamEmbedding)
{
    EXPECT_NEAR(eamEmbedEnergy(2.0, 4.0), -4.0, 1e-12);
    EXPECT_LT(eamEmbedDerivative(2.0, 4.0), 0.0);
    EXPECT_NEAR(eamDensity(3.0, 1.0, 1.0), 1.0, 1e-12);
    EXPECT_LT(eamDensity(3.0, 1.0, 2.0), eamDensity(3.0, 1.0, 1.0));
}

TEST(CellList, FindsAllPairsWithinCutoff)
{
    // Compare against the O(N^2) reference on a small random system.
    MdSystem sys = makeMdSystem(120, 0.6, MdStyle::LennardJones, 11);
    CellList cl(sys.box, sys.lj.cutoff);
    cl.build(sys.positions);

    size_t cell_pairs = 0;
    cl.forEachPair(sys.positions,
                   [&](size_t, size_t, const Vec3 &, double) {
                       ++cell_pairs;
                   });

    size_t ref_pairs = 0;
    double rc2 = sys.lj.cutoff * sys.lj.cutoff;
    for (size_t i = 0; i < sys.size(); ++i) {
        for (size_t j = i + 1; j < sys.size(); ++j) {
            Vec3 d = cl.minimumImage(sys.positions[i],
                                     sys.positions[j]);
            if (vecDot(d, d) < rc2)
                ++ref_pairs;
        }
    }
    EXPECT_EQ(cell_pairs, ref_pairs);
}

TEST(CellList, MinimumImageBounded)
{
    CellList cl(10.0, 2.5);
    Vec3 a = {9.9, 0.1, 5.0};
    Vec3 b = {0.1, 9.9, 5.0};
    Vec3 d = cl.minimumImage(a, b);
    for (int k = 0; k < 3; ++k)
        EXPECT_LE(std::abs(d[k]), 5.0);
    EXPECT_NEAR(d[0], -0.2, 1e-12);
    EXPECT_NEAR(d[1], 0.2, 1e-12);
}

TEST(MdEngine, ForcesSumToZero)
{
    for (MdStyle style : {MdStyle::LennardJones, MdStyle::Chain,
                          MdStyle::Metal}) {
        MdSystem sys = makeMdSystem(100, 0.7, style, 5);
        std::vector<Vec3> forces;
        computeForces(sys, forces);
        Vec3 net = {0.0, 0.0, 0.0};
        for (const Vec3 &f : forces)
            net = vecAdd(net, f);
        for (int k = 0; k < 3; ++k)
            EXPECT_NEAR(net[k], 0.0, 1e-9)
                << "style " << static_cast<int>(style);
    }
}

TEST(MdEngine, EnergyApproximatelyConserved)
{
    MdSystem sys = makeMdSystem(64, 0.5, MdStyle::LennardJones, 3);
    MdEnergies e0 = measureEnergies(sys);
    MdEnergies e1 = integrate(sys, 1.0e-3, 200);
    double scale = std::max(1.0, std::abs(e0.total()));
    EXPECT_NEAR(e1.total(), e0.total(), 0.02 * scale);
}

TEST(MdEngine, ChainBondsHoldPolymerTogether)
{
    MdSystem sys = makeMdSystem(64, 0.5, MdStyle::Chain, 9, 8);
    EXPECT_FALSE(sys.bonds.empty());
    integrate(sys, 5.0e-4, 100);
    CellList cl(sys.box, sys.box / 2.01);
    double max_bond = 0.0;
    for (const auto &[i, j] : sys.bonds) {
        Vec3 d = cl.minimumImage(sys.positions[i], sys.positions[j]);
        max_bond = std::max(max_bond, vecNorm(d));
    }
    // Bonds stay near their rest length; nothing flies apart.
    EXPECT_LT(max_bond, 3.0 * sys.bond.r0);
}

TEST(MdEngine, NeighborCountMatchesDensity)
{
    MdSystem sys = makeMdSystem(1000, 0.8, MdStyle::LennardJones, 21);
    double nbrs = averageNeighborCount(sys);
    // Expected ~ (4/3) pi rc^3 * density.
    double expected = 4.0 / 3.0 * 3.14159265 *
                      std::pow(sys.lj.cutoff, 3.0) * 0.8;
    EXPECT_NEAR(nbrs, expected, 0.25 * expected);
}

TEST(Pme, SpreadConservesTotalCharge)
{
    PmeParams p;
    p.grid = 16;
    p.box = 4.0;
    std::vector<Vec3> pos = {{0.1, 0.2, 0.3}, {3.9, 3.9, 3.9},
                             {2.0, 2.0, 2.0}};
    std::vector<double> q = {1.0, -0.5, 0.25};
    auto mesh = pmeSpreadCharges(p, pos, q);
    double total = 0.0;
    for (double v : mesh)
        total += v;
    EXPECT_NEAR(total, 0.75, 1e-12);
}

TEST(Pme, ReciprocalEnergyPositiveAndTranslationInvariant)
{
    PmeParams p;
    p.grid = 32;
    p.box = 8.0;
    std::vector<Vec3> pos = {{1.0, 1.0, 1.0}, {3.0, 1.0, 1.0}};
    std::vector<double> q = {1.0, 1.0};
    double e1 = pmeReciprocalEnergy(p, pos, q);
    EXPECT_GT(e1, 0.0);
    // Shift both charges by the same grid-aligned offset.
    double shift = p.box / p.grid * 4.0;
    for (Vec3 &r : pos)
        r[0] += shift;
    double e2 = pmeReciprocalEnergy(p, pos, q);
    EXPECT_NEAR(e2, e1, 1e-9 * std::abs(e1));
}

TEST(Pme, OppositeChargesAttractReciprocalEnergyDown)
{
    PmeParams p;
    p.grid = 32;
    p.box = 8.0;
    std::vector<Vec3> close = {{4.0, 4.0, 4.0}, {4.5, 4.0, 4.0}};
    std::vector<double> qpp = {1.0, 1.0};
    std::vector<double> qpm = {1.0, -1.0};
    EXPECT_GT(pmeReciprocalEnergy(p, close, qpp),
              pmeReciprocalEnergy(p, close, qpm));
}

TEST(Gb, EnergyIsNegativeForSelfSolvation)
{
    GbParams p;
    std::vector<Vec3> pos = {{0.0, 0.0, 0.0}};
    std::vector<double> q = {1.0};
    EXPECT_LT(gbEnergy(p, pos, q), 0.0);
}

TEST(Gb, CloserPairsSolvateMoreStrongly)
{
    GbParams p;
    std::vector<double> q = {1.0, 1.0};
    std::vector<Vec3> near_pos = {{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
    std::vector<Vec3> far_pos = {{0.0, 0.0, 0.0}, {10.0, 0.0, 0.0}};
    EXPECT_LT(gbEnergy(p, near_pos, q), gbEnergy(p, far_pos, q));
}

} // namespace
} // namespace mcscope
