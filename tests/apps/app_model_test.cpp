/**
 * @file
 * Cost-model tests for the AMBER and LAMMPS application workloads:
 * benchmark descriptors (Table 6), scaling characters (Tables 8, 10),
 * and phase tagging (Table 7's FFT phase).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/md/amber.hh"
#include "apps/md/lammps.hh"
#include "core/experiment.hh"
#include "core/metrics.hh"
#include "machine/config.hh"

namespace mcscope {
namespace {

TEST(AmberBench, Table6Descriptors)
{
    auto benches = amberBenchmarks();
    ASSERT_EQ(benches.size(), 5u);
    EXPECT_EQ(benches[0].name, "dhfr");
    EXPECT_EQ(benches[0].atoms, 22930);
    EXPECT_EQ(benches[0].technique, MdTechnique::Pme);
    EXPECT_EQ(benches[1].name, "factor_ix");
    EXPECT_EQ(benches[1].atoms, 90906);
    EXPECT_EQ(benches[2].name, "gb_cox2");
    EXPECT_EQ(benches[2].technique, MdTechnique::Gb);
    EXPECT_EQ(benches[3].name, "gb_mb");
    EXPECT_EQ(benches[3].atoms, 2492);
    EXPECT_EQ(benches[4].name, "JAC");
    EXPECT_EQ(benches[4].atoms, 23558);
    EXPECT_EQ(mdTechniqueName(MdTechnique::Pme), "PME");
}

TEST(AmberBench, PmeRunsTagFftPhase)
{
    AmberWorkload jac(amberBenchmarkByName("JAC"));
    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = table5Options()[0];
    cfg.ranks = 2;
    RunResult r = runExperiment(cfg, jac);
    ASSERT_TRUE(r.valid);
    double fft = r.tagged(tags::kFft);
    EXPECT_GT(fft, 0.0);
    // FFT is a minor but visible phase (Table 7 vs Table 9: ~5-15%).
    EXPECT_LT(fft / r.seconds, 0.5);
    EXPECT_GT(fft / r.seconds, 0.01);
}

TEST(AmberBench, GbHasNoFftPhase)
{
    AmberWorkload gb(amberBenchmarkByName("gb_mb"));
    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = table5Options()[0];
    cfg.ranks = 2;
    RunResult r = runExperiment(cfg, gb);
    ASSERT_TRUE(r.valid);
    EXPECT_DOUBLE_EQ(r.tagged(tags::kFft), 0.0);
}

TEST(AmberBench, GbScalesBetterThanPmeAt16)
{
    // Table 8: GB ~14x at 16 cores; PME saturates near 7-8x.
    AmberWorkload gb(amberBenchmarkByName("gb_cox2"));
    AmberWorkload pme(amberBenchmarkByName("JAC"));
    auto t_gb = defaultScalingTimes(longsConfig(), {1, 16}, gb);
    auto t_pme = defaultScalingTimes(longsConfig(), {1, 16}, pme);
    double s_gb = t_gb[0] / t_gb[1];
    double s_pme = t_pme[0] / t_pme[1];
    EXPECT_GT(s_gb, s_pme);
    EXPECT_GT(s_gb, 10.0);
    EXPECT_LT(s_pme, 15.0);
}

TEST(AmberBench, FactorIxIsBiggestPmeRun)
{
    AmberWorkload fix(amberBenchmarkByName("factor_ix"));
    AmberWorkload dhfr(amberBenchmarkByName("dhfr"));
    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = table5Options()[0];
    cfg.ranks = 4;
    double t_fix = runExperiment(cfg, fix).seconds;
    double t_dhfr = runExperiment(cfg, dhfr).seconds;
    EXPECT_GT(t_fix, 2.0 * t_dhfr);
}

TEST(LammpsBench, DescriptorsMatchPaper)
{
    auto benches = lammpsBenchmarks();
    ASSERT_EQ(benches.size(), 3u);
    for (const auto &b : benches) {
        EXPECT_EQ(b.atoms, 32000);
        EXPECT_EQ(b.steps, 100);
    }
    EXPECT_EQ(lammpsBenchmarkByName("lj").style,
              MdStyle::LennardJones);
    EXPECT_EQ(lammpsBenchmarkByName("chain").style, MdStyle::Chain);
    EXPECT_EQ(lammpsBenchmarkByName("eam").style, MdStyle::Metal);
}

TEST(LammpsBench, ChainIsSuperLinearOnLongs)
{
    // Table 10: chain reaches 19.95x on 16 cores (cache capacity).
    LammpsWorkload chain(lammpsBenchmarkByName("chain"));
    auto t = defaultScalingTimes(longsConfig(), {1, 16}, chain);
    double speedup = t[0] / t[1];
    EXPECT_GT(speedup, 16.0);
    EXPECT_LT(speedup, 26.0);
}

TEST(LammpsBench, OrderingChainAboveEamAboveLj)
{
    // Table 10 at 16 cores: chain 19.95 > eam 12.54 > lj 10.65.
    auto speedup16 = [](const char *name) {
        LammpsWorkload w(lammpsBenchmarkByName(name));
        auto t = defaultScalingTimes(longsConfig(), {1, 16}, w);
        return t[0] / t[1];
    };
    double lj = speedup16("lj");
    double chain = speedup16("chain");
    double eam = speedup16("eam");
    EXPECT_GT(chain, eam);
    EXPECT_GT(eam, lj);
}

TEST(LammpsBench, NearLinearAtTwoCores)
{
    // Table 10 at 2 cores: ~1.8-2.2 on every system.
    for (auto cfg_fn : {dmzConfig, longsConfig, tigerConfig}) {
        LammpsWorkload lj(lammpsBenchmarkByName("lj"));
        auto t = defaultScalingTimes(cfg_fn(), {1, 2}, lj);
        double s = t[0] / t[1];
        EXPECT_GT(s, 1.6);
        EXPECT_LT(s, 2.4);
    }
}

TEST(AppModels, PlacementMattersMoreOnLongsThanDmz)
{
    // Tables 9/11: DMZ default is near-optimal; Longs shows real
    // spread across numactl options.
    AmberWorkload jac(amberBenchmarkByName("JAC"));
    auto spread_of = [&jac](const MachineConfig &m, int ranks) {
        OptionSweepResult s = sweepOptions(m, {ranks}, jac);
        double lo = 1e300, hi = 0.0;
        for (double v : s.seconds[0]) {
            if (std::isnan(v))
                continue;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        return hi / lo;
    };
    // Paper Table 9 at the largest job each system hosts: Longs 16
    // tasks spread 8.96 -> 14.99 (1.67x); DMZ 4 tasks 14.38 -> 16.08
    // (1.12x).
    EXPECT_GT(spread_of(longsConfig(), 16),
              spread_of(dmzConfig(), 4) * 1.1);
}

} // namespace
} // namespace mcscope
