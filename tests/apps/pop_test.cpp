/**
 * @file
 * Tests for the ocean-model substrate: grid decomposition, the
 * five-point operator, the barotropic CG solver, and the POP cost
 * model's phase structure.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/pop/grid.hh"
#include "apps/pop/pop.hh"
#include "apps/pop/solver.hh"
#include "core/experiment.hh"
#include "machine/config.hh"
#include "util/rng.hh"

namespace mcscope {
namespace {

TEST(Grid, FivePointIdentity)
{
    Field2d in(8, 6, 2.0);
    Field2d out(8, 6);
    applyFivePoint(in, out, 1.0, 0.0);
    for (double v : out.data)
        EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Grid, FivePointLaplacianOfConstantIsScaled)
{
    // With center = 1 + 4k and w = -k, a constant field (ignoring the
    // clamped y boundary contributions) maps to itself in the
    // interior.
    Field2d in(8, 8, 3.0);
    Field2d out(8, 8);
    applyFivePoint(in, out, 1.0 + 4.0 * 0.1, -0.1);
    for (size_t y = 1; y + 1 < 8; ++y)
        for (size_t x = 0; x < 8; ++x)
            EXPECT_NEAR(out.at(x, y), 3.0, 1e-12);
}

TEST(Grid, DecompositionBalancesAndCountsNeighbors)
{
    auto d1 = BlockDecomposition::make(320, 384, 1);
    EXPECT_EQ(d1.pr * d1.pc, 1);
    EXPECT_EQ(d1.neighborCount(), 0);
    EXPECT_DOUBLE_EQ(d1.localPoints(), 320.0 * 384.0);

    auto d16 = BlockDecomposition::make(320, 384, 16);
    EXPECT_EQ(d16.pr * d16.pc, 16);
    EXPECT_EQ(d16.pr, 4);
    EXPECT_EQ(d16.pc, 4);
    EXPECT_EQ(d16.neighborCount(), 4);
    EXPECT_DOUBLE_EQ(d16.localPoints(), 320.0 * 384.0 / 16.0);
    EXPECT_GT(d16.haloPoints(), 0.0);

    // Prime count still decomposes (1 x p strips).
    auto d7 = BlockDecomposition::make(320, 384, 7);
    EXPECT_EQ(d7.pr * d7.pc, 7);
}

TEST(Grid, HaloShrinksRelativeToVolumeAsGridGrows)
{
    auto small = BlockDecomposition::make(64, 64, 4);
    auto large = BlockDecomposition::make(512, 512, 4);
    EXPECT_GT(small.haloPoints() / small.localPoints(),
              large.haloPoints() / large.localPoints());
}

TEST(BarotropicSolver, SolvesToTolerance)
{
    Rng rng(3);
    Field2d b(32, 24);
    for (double &v : b.data)
        v = rng.uniform(-1.0, 1.0);
    BarotropicResult res = solveBarotropic(b, 0.3, 500, 1e-10);
    EXPECT_LT(res.residual, 1e-10);
    EXPECT_GT(res.iterations, 1);

    // Verify against the operator.
    Field2d check(32, 24);
    barotropicOperator(res.solution, check, 0.3);
    for (size_t i = 0; i < b.data.size(); ++i)
        EXPECT_NEAR(check.data[i], b.data[i], 1e-7);
}

TEST(BarotropicSolver, MoreImplicitnessNeedsMoreIterations)
{
    Field2d b(24, 24, 0.0);
    b.at(12, 12) = 1.0;
    auto easy = solveBarotropic(b, 0.05, 2000, 1e-10);
    auto hard = solveBarotropic(b, 5.0, 2000, 1e-10);
    EXPECT_GE(hard.iterations, easy.iterations);
}

TEST(PopModel, PhasesAreTaggedAndBarotropicIsMinor)
{
    PopWorkload pop(popX1Config());
    ExperimentConfig cfg;
    cfg.machine = longsConfig();
    cfg.option = table5Options()[0];
    cfg.ranks = 4;
    RunResult r = runExperiment(cfg, pop);
    ASSERT_TRUE(r.valid);
    double baro = r.tagged(tags::kBaroclinic);
    double btrop = r.tagged(tags::kBarotropic);
    EXPECT_GT(baro, 0.0);
    EXPECT_GT(btrop, 0.0);
    // The paper's x1 runs: baroclinic ~10x barotropic (Tables 13-14).
    EXPECT_GT(baro / btrop, 4.0);
    EXPECT_LT(baro / btrop, 30.0);
}

TEST(PopModel, ScalesNearlyLinearlyOnLongs)
{
    PopWorkload pop(popX1Config());
    std::vector<double> t =
        defaultScalingTimes(longsConfig(), {1, 16}, pop);
    double speedup = t[0] / t[1];
    // Table 12: 16.11 at 16 cores.
    EXPECT_GT(speedup, 12.0);
    EXPECT_LT(speedup, 20.0);
}

} // namespace
} // namespace mcscope
