/**
 * @file
 * Tests for the hybrid (MPI between sockets + threads within a
 * socket) programming-model adapter of Section 3.4.
 */

#include <gtest/gtest.h>

#include <memory>

#include "apps/pop/pop.hh"
#include "core/experiment.hh"
#include "core/hybrid.hh"
#include "kernels/nas_cg.hh"
#include "kernels/nas_ft.hh"
#include "kernels/stream.hh"
#include "machine/config.hh"

namespace mcscope {
namespace {

RunResult
runHybrid(const MachineConfig &m, int total_contexts, int threads,
          std::shared_ptr<const LoopWorkload> base)
{
    HybridWorkload hybrid(std::move(base), threads);
    ExperimentConfig cfg;
    cfg.machine = m;
    cfg.option = {"contexts", TaskScheme::Packed,
                  MemPolicy::LocalAlloc};
    cfg.ranks = total_contexts;
    return runExperiment(cfg, hybrid);
}

RunResult
runPure(const MachineConfig &m, int ranks,
        const Workload &w)
{
    ExperimentConfig cfg;
    cfg.machine = m;
    cfg.option = {"two", TaskScheme::TwoTasksPerSocket,
                  MemPolicy::LocalAlloc};
    cfg.ranks = ranks;
    return runExperiment(cfg, w);
}

TEST(Hybrid, CompletesOnEveryMachine)
{
    auto cg = std::make_shared<NasCgWorkload>(nasCgClassA());
    for (auto cfg_fn : {dmzConfig, longsConfig}) {
        MachineConfig m = cfg_fn();
        RunResult r = runHybrid(m, m.totalCores(), m.coresPerSocket,
                                cg);
        ASSERT_TRUE(r.valid) << m.name;
        EXPECT_GT(r.seconds, 0.0);
    }
}

TEST(Hybrid, OneThreadMatchesPureMpiShape)
{
    // With one thread per task, hybrid degenerates to one-rank-per-
    // socket MPI; times should agree closely.
    auto cg = std::make_shared<NasCgWorkload>(nasCgClassA());
    MachineConfig m = longsConfig();
    RunResult hybrid = runHybrid(m, 8, 1, cg);
    ExperimentConfig cfg;
    cfg.machine = m;
    cfg.option = {"one", TaskScheme::OneTaskPerSocket,
                  MemPolicy::LocalAlloc};
    cfg.ranks = 8;
    RunResult pure = runExperiment(cfg, *cg);
    ASSERT_TRUE(hybrid.valid && pure.valid);
    EXPECT_NEAR(hybrid.seconds / pure.seconds, 1.0, 0.02);
}

TEST(Hybrid, SplitsComputeAcrossThreads)
{
    // A compute-dominated workload should run ~2x faster with two
    // threads per task than with one task per socket alone.
    auto ft = std::make_shared<NasFtWorkload>(nasFtClassA());
    MachineConfig m = dmzConfig();
    RunResult one = runHybrid(m, 2, 1, ft);
    RunResult two = runHybrid(m, 4, 2, ft);
    ASSERT_TRUE(one.valid && two.valid);
    EXPECT_GT(one.seconds / two.seconds, 1.3);
}

TEST(Hybrid, BeatsPureMpiForCgOnTheLadder)
{
    // The paper's hypothesis: MPI between sockets + threads within
    // them should outperform 2-ranks-per-socket pure MPI for the
    // latency-sensitive CG at full machine load.
    auto cg = std::make_shared<NasCgWorkload>(nasCgClassB());
    MachineConfig m = longsConfig();
    RunResult hybrid = runHybrid(m, 16, 2, cg);
    RunResult pure = runPure(m, 16, *cg);
    ASSERT_TRUE(hybrid.valid && pure.valid);
    EXPECT_LT(hybrid.seconds, pure.seconds * 1.02);
}

TEST(Hybrid, StreamGainsNothingFromThreads)
{
    // Bandwidth-bound code cannot benefit: the second thread shares
    // the same memory link the paper showed was already saturated.
    auto stream = std::make_shared<StreamWorkload>(4u << 20, 8);
    MachineConfig m = dmzConfig();
    RunResult one = runHybrid(m, 2, 1, stream);
    RunResult two = runHybrid(m, 4, 2, stream);
    ASSERT_TRUE(one.valid && two.valid);
    // Per-context work is fixed, so two threads move the same total
    // bytes per task; time should not improve meaningfully.
    EXPECT_GT(two.seconds / one.seconds, 0.85);
}

TEST(HybridDeath, RejectsTooManyThreads)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_DEATH(
        {
            auto cg =
                std::make_shared<NasCgWorkload>(nasCgClassA());
            runHybrid(dmzConfig(), 4, 4, cg);
        },
        "exceed");
}

} // namespace
} // namespace mcscope
