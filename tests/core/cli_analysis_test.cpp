/**
 * @file
 * Tests for the CLI front end and the bottleneck-analysis module.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/analysis.hh"
#include "core/cli.hh"
#include "core/experiment.hh"
#include "core/registry.hh"
#include "kernels/stream.hh"
#include "machine/config.hh"

namespace mcscope {
namespace {

int
cli(const std::vector<std::string> &args, std::string *out = nullptr)
{
    std::ostringstream oss;
    int rc = runCli(args, oss);
    if (out)
        *out = oss.str();
    return rc;
}

TEST(Cli, UsageOnEmptyAndUnknown)
{
    std::string out;
    EXPECT_EQ(cli({}, &out), 2);
    EXPECT_NE(out.find("usage"), std::string::npos);
    EXPECT_EQ(cli({"frobnicate"}, &out), 2);
}

TEST(Cli, ListShowsEverything)
{
    std::string out;
    EXPECT_EQ(cli({"list"}, &out), 0);
    EXPECT_NE(out.find("nas-cg-b"), std::string::npos);
    EXPECT_NE(out.find("longs"), std::string::npos);
    EXPECT_NE(out.find("One MPI + Local Alloc"), std::string::npos);
}

TEST(Cli, CalibrationPrints)
{
    std::string out;
    EXPECT_EQ(cli({"calibration"}, &out), 0);
    EXPECT_NE(out.find("coherenceAlpha"), std::string::npos);
}

TEST(Cli, RunBasic)
{
    std::string out;
    EXPECT_EQ(cli({"run", "stream", "--machine", "dmz", "--ranks",
                   "2"},
                  &out),
              0);
    EXPECT_NE(out.find("stream-triad"), std::string::npos);
    EXPECT_NE(out.find(" s"), std::string::npos);
}

TEST(Cli, RunResolvesOptionByLabelFragment)
{
    std::string out;
    EXPECT_EQ(cli({"run", "stream", "--machine", "longs", "--ranks",
                   "4", "--option", "localalloc"},
                  &out),
              0);
    EXPECT_NE(out.find("Local Alloc"), std::string::npos);
}

TEST(Cli, RunReportsInfeasible)
{
    std::string out;
    EXPECT_EQ(cli({"run", "stream", "--machine", "dmz", "--ranks",
                   "4", "--option", "1"},
                  &out),
              1);
    EXPECT_NE(out.find("infeasible"), std::string::npos);
}

TEST(Cli, RunRejectsBadFlags)
{
    std::string out;
    EXPECT_EQ(cli({"run", "stream", "--walrus"}, &out), 2);
    EXPECT_EQ(cli({"run", "not-a-workload"}, &out), 2);
    EXPECT_EQ(cli({"run", "stream", "--impl", "zmpi"}, &out), 2);
    EXPECT_EQ(cli({"run", "stream", "--ranks", "x,2"}, &out), 2);
    EXPECT_EQ(cli({"run", "stream", "--option", "nothing-matches"},
                  &out),
              2);
}

TEST(Cli, DetailIncludesBottleneck)
{
    std::string out;
    EXPECT_EQ(cli({"run", "stream", "--machine", "dmz", "--ranks",
                   "2", "--detail"},
                  &out),
              0);
    EXPECT_NE(out.find("bottleneck:"), std::string::npos);
    EXPECT_NE(out.find("controllers"), std::string::npos);
}

TEST(Cli, SweepPrintsTableAndGains)
{
    std::string out;
    EXPECT_EQ(cli({"sweep", "stream", "--machine", "dmz", "--ranks",
                   "2,4"},
                  &out),
              0);
    EXPECT_NE(out.find("Interleave"), std::string::npos);
    EXPECT_NE(out.find("placement gain at 2 ranks"),
              std::string::npos);
}

TEST(Cli, SweepWithJobsMatchesSerialOutput)
{
    std::string serial;
    EXPECT_EQ(cli({"sweep", "stream", "--machine", "dmz", "--ranks",
                   "2,4"},
                  &serial),
              0);
    std::string parallel;
    EXPECT_EQ(cli({"sweep", "stream", "--machine", "dmz", "--ranks",
                   "2,4", "--jobs", "4"},
                  &parallel),
              0);
    EXPECT_EQ(serial, parallel);
}

TEST(Cli, RejectsBadJobsValues)
{
    std::string out;
    EXPECT_EQ(cli({"sweep", "stream", "--jobs", "0"}, &out), 2);
    EXPECT_NE(out.find("bad --jobs"), std::string::npos);
    EXPECT_EQ(cli({"sweep", "stream", "--jobs", "-2"}, &out), 2);
    EXPECT_EQ(cli({"sweep", "stream", "--jobs", "many"}, &out), 2);
    EXPECT_EQ(cli({"sweep", "stream", "--jobs"}, &out), 2);
}

TEST(Cli, ScalingPrintsSeries)
{
    std::string out;
    EXPECT_EQ(cli({"scaling", "lammps-chain", "--machine", "dmz"},
                  &out),
              0);
    EXPECT_NE(out.find("efficiency"), std::string::npos);
}

TEST(Cli, ParseRankList)
{
    EXPECT_EQ(parseRankList("2,4,8"), (std::vector<int>{2, 4, 8}));
    EXPECT_EQ(parseRankList("16"), (std::vector<int>{16}));
    EXPECT_TRUE(parseRankList("").empty());
    EXPECT_TRUE(parseRankList("2,x").empty());
    EXPECT_TRUE(parseRankList("-3").empty());
    EXPECT_TRUE(parseRankList("0").empty());
}

TEST(Cli, ParseRankListRejectsOverflowInsteadOfThrowing)
{
    // All-digits strings beyond int range used to reach std::stoi and
    // escape as std::out_of_range; they must read as invalid input.
    EXPECT_TRUE(parseRankList("99999999999999999999").empty());
    EXPECT_TRUE(parseRankList("2147483648").empty()); // INT_MAX + 1
    EXPECT_TRUE(parseRankList("4,99999999999999999999").empty());
    EXPECT_EQ(parseRankList("2147483647"),
              (std::vector<int>{2147483647}));
}

TEST(Cli, NumericFlagsRejectOverflowInsteadOfThrowing)
{
    std::string out;
    EXPECT_EQ(cli({"run", "stream", "--ranks",
                   "99999999999999999999"},
                  &out),
              2);
    EXPECT_NE(out.find("bad --ranks"), std::string::npos);
    EXPECT_EQ(cli({"sweep", "stream", "--jobs",
                   "99999999999999999999"},
                  &out),
              2);
    EXPECT_NE(out.find("bad --jobs"), std::string::npos);
    EXPECT_EQ(cli({"run", "stream", "--option",
                   "99999999999999999999"},
                  &out),
              2);
    EXPECT_NE(out.find("unknown --option"), std::string::npos);
    EXPECT_EQ(cli({"run", "stream", "--timeline-buckets",
                   "99999999999999999999"},
                  &out),
              2);
    EXPECT_NE(out.find("bad --timeline-buckets"), std::string::npos);
}

TEST(Cli, TraceOutWritesParseableRecords)
{
    const std::string path =
        testing::TempDir() + "mcscope_cli_trace.json";
    std::string out;
    EXPECT_EQ(cli({"run", "stream-triad", "--machine", "dmz",
                   "--ranks", "2", "--trace-out", path},
                  &out),
              0);
    EXPECT_NE(out.find("trace: "), std::string::npos);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream body;
    body << in.rdbuf();
    EXPECT_NE(body.str().find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(body.str().find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(body.str().find("\"ph\":\"E\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, TimelineOutWritesCsv)
{
    const std::string path =
        testing::TempDir() + "mcscope_cli_timeline.csv";
    std::string out;
    EXPECT_EQ(cli({"run", "stream", "--machine", "dmz", "--ranks",
                   "2", "--timeline-out", path, "--timeline-buckets",
                   "8"},
                  &out),
              0);
    EXPECT_NE(out.find("timeline: "), std::string::npos);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header.rfind("bucket_start,bucket_end,", 0), 0u);
    std::remove(path.c_str());
}

TEST(Cli, DetailIncludesEngineCountersAndTimeline)
{
    std::string out;
    EXPECT_EQ(cli({"run", "stream", "--machine", "dmz", "--ranks",
                   "2", "--detail", "--timeline-buckets", "8"},
                  &out),
              0);
    EXPECT_NE(out.find("engine: "), std::string::npos);
    EXPECT_NE(out.find("allocator reruns"), std::string::npos);
    EXPECT_NE(out.find("utilization timeline"), std::string::npos);
}

TEST(Cli, SweepTelemetryJsonAndSummary)
{
    const std::string path =
        testing::TempDir() + "mcscope_cli_telemetry.json";
    std::string out;
    EXPECT_EQ(cli({"sweep", "stream", "--machine", "dmz", "--ranks",
                   "2,4", "--telemetry-out", path},
                  &out),
              0);
    EXPECT_NE(out.find("telemetry: "), std::string::npos);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream body;
    body << in.rdbuf();
    EXPECT_NE(body.str().find("\"grid_points\": 12"),
              std::string::npos);
    EXPECT_NE(body.str().find("\"points\": ["), std::string::npos);
    std::remove(path.c_str());

    // --detail alone prints the summary without needing a file.
    EXPECT_EQ(cli({"scaling", "stream", "--machine", "dmz",
                   "--ranks", "1,2", "--detail"},
                  &out),
              0);
    EXPECT_NE(out.find("telemetry: "), std::string::npos);
    EXPECT_NE(out.find("grid points"), std::string::npos);
}

TEST(Analysis, StreamIsControllerBound)
{
    StreamWorkload stream(4u << 20, 8);
    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = {"packed", TaskScheme::Packed,
                  MemPolicy::LocalAlloc};
    cfg.ranks = 2;
    DetailedResult res = runExperimentDetailed(cfg, stream);
    ASSERT_TRUE(res.run.valid);
    // Both ranks on socket 0: its controller is the bottleneck.
    EXPECT_EQ(res.hottest().name, "mem0");
    EXPECT_GT(res.hottest().utilization, 0.9);
    EXPECT_GT(res.meanUtilization(ResourceKind::MemoryController),
              res.meanUtilization(ResourceKind::Core));
    std::string report = bottleneckReport(res);
    EXPECT_NE(report.find("bottleneck: mem0"), std::string::npos);
}

TEST(Analysis, BucketsCoverAllResources)
{
    StreamWorkload stream(1u << 20, 2);
    ExperimentConfig cfg;
    cfg.machine = longsConfig();
    cfg.option = table5Options()[0];
    cfg.ranks = 4;
    DetailedResult res = runExperimentDetailed(cfg, stream);
    ASSERT_TRUE(res.run.valid);
    EXPECT_EQ(res.cores.size(), 16u);
    EXPECT_EQ(res.controllers.size(), 8u);
    EXPECT_EQ(res.links.size(), 20u); // 10 undirected HT links
}

TEST(Analysis, InvalidRunStaysInvalid)
{
    StreamWorkload stream(1u << 20, 2);
    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = table5Options()[1];
    cfg.ranks = 4;
    DetailedResult res = runExperimentDetailed(cfg, stream);
    EXPECT_FALSE(res.run.valid);
    EXPECT_TRUE(res.cores.empty());
}

} // namespace
} // namespace mcscope
