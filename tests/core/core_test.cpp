/**
 * @file
 * Unit tests for the experiment harness: run orchestration, sweeps,
 * metrics, reports, the registry, and calibration documentation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/calibration.hh"
#include "core/experiment.hh"
#include "core/metrics.hh"
#include "core/registry.hh"
#include "core/report.hh"
#include "kernels/stream.hh"
#include "machine/config.hh"

namespace mcscope {
namespace {

TEST(Experiment, InvalidPlacementYieldsInvalidResult)
{
    StreamWorkload stream(1u << 20, 2);
    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = table5Options()[1]; // one per socket
    cfg.ranks = 4;                   // > 2 sockets
    RunResult r = runExperiment(cfg, stream);
    EXPECT_FALSE(r.valid);
}

TEST(Experiment, DeterministicAcrossRuns)
{
    StreamWorkload stream(1u << 20, 4);
    ExperimentConfig cfg;
    cfg.machine = longsConfig();
    cfg.option = table5Options()[5];
    cfg.ranks = 8;
    RunResult a = runExperiment(cfg, stream);
    RunResult b = runExperiment(cfg, stream);
    ASSERT_TRUE(a.valid && b.valid);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.events, b.events);
}

TEST(Experiment, SweepShapeMatchesTableLayout)
{
    StreamWorkload stream(1u << 20, 2);
    OptionSweepResult sweep =
        sweepOptions(dmzConfig(), {2, 4}, stream);
    ASSERT_EQ(sweep.rankCounts.size(), 2u);
    ASSERT_EQ(sweep.options.size(), 6u);
    ASSERT_EQ(sweep.seconds.size(), 2u);
    ASSERT_EQ(sweep.seconds[0].size(), 6u);
    // DMZ at 4 ranks: the One-MPI columns are "-" (Table 3).
    EXPECT_FALSE(std::isnan(sweep.seconds[1][0]));
    EXPECT_TRUE(std::isnan(sweep.seconds[1][1]));
    EXPECT_TRUE(std::isnan(sweep.seconds[1][2]));
    EXPECT_FALSE(std::isnan(sweep.seconds[1][3]));
}

TEST(Metrics, SpeedupsAndEfficiencies)
{
    std::vector<double> times = {100.0, 50.0, 30.0};
    auto s = speedups(times);
    EXPECT_DOUBLE_EQ(s[0], 1.0);
    EXPECT_DOUBLE_EQ(s[1], 2.0);
    EXPECT_NEAR(s[2], 100.0 / 30.0, 1e-12);

    auto e = efficiencies(times, {1, 2, 4});
    EXPECT_DOUBLE_EQ(e[0], 1.0);
    EXPECT_DOUBLE_EQ(e[1], 1.0);
    EXPECT_NEAR(e[2], (100.0 / 30.0) / 4.0, 1e-12);
}

TEST(Metrics, EfficienciesRejectNonPositiveRanks)
{
    std::vector<double> times = {100.0, 50.0};
    EXPECT_DEATH(efficiencies(times, {1, 0}), "positive");
    EXPECT_DEATH(efficiencies(times, {-2, 4}), "positive");
}

TEST(Metrics, SingleStarRatioAndPlacementGain)
{
    EXPECT_DOUBLE_EQ(singleToStarRatio(1.0, 2.5), 2.5);
    EXPECT_NEAR(placementGain({100.0, 80.0, 120.0}), 0.2, 1e-12);
    EXPECT_DOUBLE_EQ(placementGain({100.0}), 0.0);
    // NaN cells (invalid options) are ignored.
    EXPECT_NEAR(placementGain({100.0, std::nan(""), 50.0}), 0.5,
                1e-12);
}

TEST(Telemetry, SweepRecordsEveryGridPoint)
{
    StreamWorkload stream(1u << 20, 2);
    SweepTelemetry telemetry;
    OptionSweepResult sweep =
        sweepOptions(dmzConfig(), {2, 4}, stream, MpiImpl::OpenMpi,
                     SubLayer::USysV, -1, 2, &telemetry);
    ASSERT_EQ(telemetry.points.size(),
              2 * sweep.options.size());
    EXPECT_EQ(telemetry.jobs, 2);
    EXPECT_GT(telemetry.wallSeconds, 0.0);
    EXPECT_GT(telemetry.totalEvents(), 0u);
    EXPECT_GT(telemetry.eventsPerSecond(), 0.0);
    EXPECT_GT(telemetry.occupancy(), 0.0);
    EXPECT_LE(telemetry.occupancy(), 1.0 + 1e-9);
    // Samples line up with the sweep grid, row-major.
    for (size_t row = 0; row < 2; ++row) {
        for (size_t col = 0; col < sweep.options.size(); ++col) {
            const GridPointSample &p =
                telemetry.points[row * sweep.options.size() + col];
            EXPECT_EQ(p.ranks, sweep.rankCounts[row]);
            EXPECT_EQ(p.label, sweep.options[col].label);
            EXPECT_EQ(p.valid,
                      !std::isnan(sweep.seconds[row][col]));
            if (p.valid) {
                EXPECT_DOUBLE_EQ(p.simSeconds,
                                 sweep.seconds[row][col]);
            }
        }
    }
    EXPECT_NE(telemetry.summary().find("grid points"),
              std::string::npos);
}

TEST(Telemetry, JsonDumpHasAllFields)
{
    SweepTelemetry t;
    t.jobs = 2;
    t.wallSeconds = 1.5;
    t.points.push_back({4, "Default", true, 0.5, 2.5, 100});
    t.points.push_back({8, "Inter\"leave", false, 0.25, 0.0, 0});
    std::ostringstream oss;
    t.writeJson(oss);
    const std::string json = oss.str();
    EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"grid_points\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"total_events\": 100"), std::string::npos);
    EXPECT_NE(json.find("\"valid\": false"), std::string::npos);
    // Labels pass through the JSON string escaper.
    EXPECT_NE(json.find("Inter\\\"leave"), std::string::npos);
}

TEST(Report, OptionSweepTablePrintsDashesForInvalid)
{
    StreamWorkload stream(1u << 20, 2);
    OptionSweepResult sweep = sweepOptions(dmzConfig(), {4}, stream);
    TextTable t(optionSweepHeader("Kernel"));
    appendOptionSweepRows(t, sweep, "STREAM");
    std::string s = t.str();
    EXPECT_NE(s.find("One MPI + Local Alloc"), std::string::npos);
    EXPECT_NE(s.find("STREAM"), std::string::npos);
    EXPECT_NE(s.find(" - "), std::string::npos);
}

TEST(Report, SpeedupTableShape)
{
    TextTable t = speedupTable({2, 4}, {"CG", "FT"},
                               {{1.9, 1.8}, {3.5, 3.2}});
    std::string s = t.str();
    EXPECT_NE(s.find("Number of cores"), std::string::npos);
    EXPECT_NE(s.find("1.90"), std::string::npos);
    EXPECT_NE(s.find("3.20"), std::string::npos);
}

TEST(Registry, AllWorkloadsInstantiate)
{
    for (const std::string &name : registeredWorkloads()) {
        auto w = makeWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        EXPECT_FALSE(w->name().empty());
    }
}

TEST(Registry, EveryWorkloadRunsOnTwoRanks)
{
    for (const std::string &name : registeredWorkloads()) {
        auto w = makeWorkload(name);
        ExperimentConfig cfg;
        cfg.machine = dmzConfig();
        cfg.option = table5Options()[0];
        cfg.ranks = 2;
        RunResult r = runExperiment(cfg, *w);
        ASSERT_TRUE(r.valid) << name;
        EXPECT_GT(r.seconds, 0.0) << name;
        EXPECT_TRUE(std::isfinite(r.seconds)) << name;
    }
}

TEST(Calibration, TableIsPopulatedAndRenderable)
{
    auto entries = calibrationTable();
    EXPECT_GE(entries.size(), 10u);
    for (const auto &e : entries) {
        EXPECT_FALSE(e.name.empty());
        EXPECT_FALSE(e.provenance.empty());
    }
    std::string report = calibrationReport();
    EXPECT_NE(report.find("coherenceAlpha"), std::string::npos);
    EXPECT_NE(report.find("sysv"), std::string::npos);
}

} // namespace
} // namespace mcscope
