/**
 * @file
 * Scenario pipeline tests: spec JSON round-trips, digest stability
 * and sensitivity, plan deduplication, and the result cache's
 * correctness guarantees (poisoned entries re-simulated, cached ==
 * fresh bit-for-bit).
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/plan.hh"
#include "core/registry.hh"
#include "core/runner.hh"
#include "core/scenario.hh"
#include "kernels/stream.hh"
#include "sim/audit.hh"
#include "util/rng.hh"

using namespace mcscope;

namespace {

/** Fresh empty directory under the system temp dir. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("mcscope_" + tag + "_" +
                  std::to_string(static_cast<unsigned>(getpid()))))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

ScenarioSpec
randomSpec(Rng &rng)
{
    static const char *kWorkloads[] = {"stream", "nas-cg-b", "nas-ft-b",
                                       "hpcc-fft", "dgemm-acml"};
    static const char *kMachines[] = {"tiger", "dmz", "longs"};
    std::vector<NumactlOption> options = table5Options();

    ScenarioSpec s;
    s.workload = kWorkloads[rng.below(std::size(kWorkloads))];
    s.machinePreset = kMachines[rng.below(std::size(kMachines))];
    s.machine = configByName(s.machinePreset);
    s.option = options[rng.below(options.size())];
    s.ranks = 1 << rng.below(4);
    s.impl = rng.below(2) ? MpiImpl::Lam : MpiImpl::OpenMpi;
    s.sublayer = rng.below(2) ? SubLayer::SysV : SubLayer::USysV;
    s.latencyNoise = 1.0 + 0.25 * static_cast<double>(rng.below(3));
    s.canonicalize();
    return s;
}

/** One-point plan for a cheap, cacheable registry workload. */
SweepPlan
tinyPlan()
{
    SweepAxes axes;
    axes.machinePreset = "dmz";
    axes.workloads = {"nas-ep-b"};
    axes.rankCounts = {2};
    axes.options = {table5Options().front()};
    return SweepPlan::expand(axes);
}

} // namespace

TEST(ScenarioSpec, RoundTripsThroughJson)
{
    Rng rng(42);
    for (int i = 0; i < 50; ++i) {
        ScenarioSpec s = randomSpec(rng);
        auto doc = parseJson(s.toJson().dump(2));
        ASSERT_TRUE(doc.has_value());
        std::string error;
        auto back = parseScenarioSpec(*doc, &error);
        ASSERT_TRUE(back.has_value()) << error;
        EXPECT_TRUE(s == *back)
            << s.canonicalText() << "\n != \n" << back->canonicalText();
        EXPECT_EQ(s.digest(), back->digest());
    }
}

TEST(ScenarioSpec, DigestIgnoresJsonKeyOrder)
{
    const char *forward = R"({"workload": "nas-cg-b", "machine": "dmz",
        "ranks": 4, "impl": "lam", "sublayer": "sysv",
        "option": "localalloc", "latency_noise": 1.25})";
    const char *shuffled = R"({"latency_noise": 1.25,
        "option": "localalloc", "sublayer": "sysv", "impl": "lam",
        "ranks": 4, "machine": "dmz", "workload": "nas-cg-b"})";
    std::string error;
    auto a = parseScenarioSpec(*parseJson(forward), &error);
    ASSERT_TRUE(a.has_value()) << error;
    auto b = parseScenarioSpec(*parseJson(shuffled), &error);
    ASSERT_TRUE(b.has_value()) << error;
    EXPECT_EQ(a->canonicalText(), b->canonicalText());
    EXPECT_EQ(a->digest(), b->digest());
}

TEST(ScenarioSpec, PresetAndInlineMachineDigestEqually)
{
    ScenarioSpec preset;
    preset.workload = "stream";
    preset.machinePreset = "longs";
    preset.machine = configByName("longs");
    preset.canonicalize();

    // The same machine spelled inline must name the same experiment.
    ScenarioSpec inline_machine = preset;
    inline_machine.machinePreset.clear();
    inline_machine.canonicalize();

    EXPECT_TRUE(preset == inline_machine);
    EXPECT_EQ(preset.digest(), inline_machine.digest());
}

TEST(ScenarioSpec, DigestSeparatesDifferentExperiments)
{
    Rng rng(7);
    ScenarioSpec base = randomSpec(rng);

    ScenarioSpec ranks = base;
    ranks.ranks = base.ranks * 2;
    EXPECT_NE(base.digest(), ranks.digest());

    ScenarioSpec noise = base;
    noise.latencyNoise = base.latencyNoise + 0.5;
    EXPECT_NE(base.digest(), noise.digest());

    ScenarioSpec workload = base;
    workload.workload =
        base.workload == "stream" ? "dgemm-acml" : "stream";
    EXPECT_NE(base.digest(), workload.digest());
}

TEST(ScenarioSpec, CoherenceBlockRoundTripsAndSeparatesDigests)
{
    ScenarioSpec legacy;
    legacy.workload = "stream";
    legacy.machine = configByName("longs");
    legacy.canonicalize();

    // Coherence overrides must drop the preset token, or
    // canonicalize() snaps the machine back to the preset definition
    // (this is why the CLI clears machinePreset for --coherence).
    ScenarioSpec snoopy = legacy;
    snoopy.machinePreset.clear();
    snoopy.machine.coherence.mode = CoherenceMode::Snoopy;
    snoopy.canonicalize();
    ScenarioSpec directory = legacy;
    directory.machinePreset.clear();
    directory.machine.coherence.mode = CoherenceMode::Directory;
    directory.canonicalize();

    // The coherence block survives the JSON round trip...
    for (const ScenarioSpec *s : {&legacy, &snoopy, &directory}) {
        auto doc = parseJson(s->toJson().dump(2));
        ASSERT_TRUE(doc.has_value());
        std::string error;
        auto back = parseScenarioSpec(*doc, &error);
        ASSERT_TRUE(back.has_value()) << error;
        EXPECT_TRUE(*s == *back) << s->canonicalText();
        EXPECT_EQ(s->digest(), back->digest());
    }

    // ...and names a different experiment per mode and per size.
    EXPECT_NE(legacy.digest(), snoopy.digest());
    EXPECT_NE(legacy.digest(), directory.digest());
    EXPECT_NE(snoopy.digest(), directory.digest());

    ScenarioSpec small_dir = directory;
    small_dir.machinePreset.clear();
    small_dir.machine.coherence.directoryEntries = 4096.0;
    small_dir.canonicalize();
    EXPECT_NE(directory.digest(), small_dir.digest());
}

TEST(ScenarioSpec, ParserRejectsNonIntegralCounts)
{
    std::string error;
    auto bad = parseScenarioSpec(
        *parseJson(R"({"workload": "stream",
                       "machine": {"sockets": 2.7}})"),
        &error);
    EXPECT_FALSE(bad.has_value());
    EXPECT_NE(error.find("must be an integer"), std::string::npos)
        << error;
}

TEST(ScenarioSpec, ParserRejectsBadHtLinks)
{
    std::string error;
    auto self = parseScenarioSpec(
        *parseJson(R"({"workload": "stream", "machine":
            {"sockets": 2, "ht_links": [[0, 0]]}})"),
        &error);
    EXPECT_FALSE(self.has_value());
    EXPECT_NE(error.find("self-link"), std::string::npos) << error;

    error.clear();
    auto dup = parseScenarioSpec(
        *parseJson(R"({"workload": "stream", "machine":
            {"sockets": 2, "ht_links": [[0, 1], [1, 0]]}})"),
        &error);
    EXPECT_FALSE(dup.has_value());
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(ScenarioSpec, ParserRejectsBadCoherenceBlocks)
{
    std::string error;
    auto bad_key = parseScenarioSpec(
        *parseJson(R"({"workload": "stream", "machine":
            {"coherence": {"mode": "snoopy", "probes": 4}}})"),
        &error);
    EXPECT_FALSE(bad_key.has_value());
    EXPECT_NE(error.find("machine.coherence"), std::string::npos)
        << error;

    error.clear();
    auto bad_mode = parseScenarioSpec(
        *parseJson(R"({"workload": "stream", "machine":
            {"coherence": {"mode": "mesi"}}})"),
        &error);
    EXPECT_FALSE(bad_mode.has_value());
    EXPECT_NE(error.find("must be one of"), std::string::npos) << error;
}

TEST(SweepPlan, FromJsonDirectoryEntriesAxis)
{
    auto doc = parseJson(R"({"machine": "longs",
        "workloads": ["stream"], "ranks": [4],
        "options": ["localalloc"],
        "directory_entries": [4096, 65536]})");
    ASSERT_TRUE(doc.has_value());
    std::string error;
    auto plan = SweepPlan::fromJson(*doc, &error);
    ASSERT_TRUE(plan.has_value()) << error;
    ASSERT_EQ(plan->specs().size(), 2u);
    for (const ScenarioSpec &s : plan->specs()) {
        // Variants are inline machines in Directory mode, distinctly
        // digested by their directory size.
        EXPECT_TRUE(s.machinePreset.empty());
        EXPECT_EQ(s.machine.coherence.mode, CoherenceMode::Directory);
    }
    EXPECT_EQ(plan->specs()[0].machine.coherence.directoryEntries,
              4096.0);
    EXPECT_EQ(plan->specs()[1].machine.coherence.directoryEntries,
              65536.0);
    EXPECT_NE(plan->specs()[0].digest(), plan->specs()[1].digest());

    error.clear();
    auto bad = SweepPlan::fromJson(
        *parseJson(R"({"workloads": ["stream"],
                       "directory_entries": [0]})"),
        &error);
    EXPECT_FALSE(bad.has_value());
    EXPECT_NE(error.find("directory_entries"), std::string::npos)
        << error;
}

TEST(ScenarioSpec, ParserRejectsUnknownKeysAndWorkloads)
{
    std::string error;
    auto typo = parseScenarioSpec(
        *parseJson(R"({"workload": "stream", "rank": 4})"), &error);
    EXPECT_FALSE(typo.has_value());
    EXPECT_NE(error.find("rank"), std::string::npos);

    error.clear();
    auto unknown = parseScenarioSpec(
        *parseJson(R"({"workload": "streem"})"), &error);
    EXPECT_FALSE(unknown.has_value());
    EXPECT_NE(error.find("stream"), std::string::npos)
        << "error should suggest the nearest name: " << error;
}

TEST(ScenarioSpec, ResolveOptionSpec)
{
    std::vector<NumactlOption> options = table5Options();
    auto by_index = resolveOptionSpec("0");
    ASSERT_TRUE(by_index.has_value());
    EXPECT_EQ(by_index->label, options[0].label);

    auto by_label = resolveOptionSpec("localalloc");
    ASSERT_TRUE(by_label.has_value());
    EXPECT_EQ(by_label->policy, MemPolicy::LocalAlloc);

    EXPECT_FALSE(resolveOptionSpec("no-such-option").has_value());
    EXPECT_FALSE(resolveOptionSpec("99").has_value());
}

TEST(SweepPlan, DeduplicatesRepeatedPoints)
{
    Rng rng(3);
    ScenarioSpec a = randomSpec(rng);
    ScenarioSpec b = randomSpec(rng);
    while (b == a)
        b = randomSpec(rng);

    SweepPlan plan = SweepPlan::fromSpecs({a, b, a, a, b});
    EXPECT_EQ(plan.pointCount(), 5u);
    EXPECT_EQ(plan.specs().size(), 2u);
    EXPECT_EQ(plan.specIndex(0), plan.specIndex(2));
    EXPECT_EQ(plan.specIndex(1), plan.specIndex(4));
    EXPECT_TRUE(plan.pointSpec(3) == a);
}

TEST(SweepPlan, FromJsonDeduplicatesAxes)
{
    auto doc = parseJson(R"({"machine": "dmz",
        "workloads": ["nas-ep-b", "nas-ep-b"], "ranks": [2, 2]})");
    ASSERT_TRUE(doc.has_value());
    std::string error;
    auto plan = SweepPlan::fromJson(*doc, &error);
    ASSERT_TRUE(plan.has_value()) << error;
    // 2 workloads x 2 ranks x 6 options = 24 grid points, but only
    // one distinct (workload, rank) pair survives deduplication.
    EXPECT_EQ(plan->pointCount(), 24u);
    EXPECT_EQ(plan->specs().size(), 6u);
}

TEST(SweepPlan, FromJsonRejectsUnknownKeysAndWorkloads)
{
    std::string error;
    auto bad_key = SweepPlan::fromJson(
        *parseJson(R"({"workloads": ["stream"], "rank": [2]})"), &error);
    EXPECT_FALSE(bad_key.has_value());

    error.clear();
    auto bad_workload = SweepPlan::fromJson(
        *parseJson(R"({"workloads": ["streem"]})"), &error);
    EXPECT_FALSE(bad_workload.has_value());
    EXPECT_NE(error.find("stream"), std::string::npos) << error;
}

TEST(ResultCache, EntryJsonRoundTrips)
{
    RunResult r;
    r.valid = true;
    r.seconds = 3.14159265358979;
    r.taggedSeconds[2] = 1.25;
    r.taggedSeconds[7] = 0.5;
    r.events = 1234;
    r.audited = true;
    r.auditDigest = 0xdeadbeefcafe1234ULL;
    r.auditChecks = 99;

    const uint64_t digest = 0x0123456789abcdefULL;
    JsonValue doc = runResultToJson(digest, r);
    auto back = parseRunResult(doc, digest);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->valid, r.valid);
    EXPECT_EQ(back->seconds, r.seconds); // bit-for-bit
    EXPECT_EQ(back->taggedSeconds, r.taggedSeconds);
    EXPECT_EQ(back->events, r.events);
    EXPECT_EQ(back->audited, r.audited);
    EXPECT_EQ(back->auditDigest, r.auditDigest);
    EXPECT_EQ(back->auditChecks, r.auditChecks);

    // The same entry under a different expected digest is a stale or
    // misfiled entry and must be rejected.
    EXPECT_FALSE(parseRunResult(doc, digest + 1).has_value());
}

TEST(ResultCache, EntryParserRejectsNonsense)
{
    RunResult r;
    r.valid = true;
    r.seconds = 1.0;
    const uint64_t digest = 42;

    JsonValue negative = runResultToJson(digest, r);
    negative.set("seconds", JsonValue::number(-1.0));
    EXPECT_FALSE(parseRunResult(negative, digest).has_value());

    JsonValue missing = runResultToJson(digest, r);
    JsonValue stripped = JsonValue::object();
    for (const auto &member : missing.members()) {
        if (member.first != "seconds")
            stripped.set(member.first, member.second);
    }
    EXPECT_FALSE(parseRunResult(stripped, digest).has_value());
}

TEST(Runner, MemoryCacheServesSecondRun)
{
    SweepPlan plan = tinyPlan();
    ResultCache cache;
    RunnerOptions opts;
    opts.cache = &cache;

    PlanResults first = runPlan(plan, opts);
    EXPECT_EQ(first.stats.misses, 1u);
    EXPECT_EQ(first.stats.simulations, 1u);
    ASSERT_TRUE(first.bySpec[0].valid);

    PlanResults second = runPlan(plan, opts);
    EXPECT_EQ(second.stats.memoryHits, 1u);
    if (!auditRequestedByEnv()) {
        EXPECT_EQ(second.stats.simulations, 0u);
    }
    EXPECT_EQ(second.bySpec[0].seconds, first.bySpec[0].seconds);
    EXPECT_EQ(second.bySpec[0].taggedSeconds,
              first.bySpec[0].taggedSeconds);
}

TEST(Runner, DiskCacheSharesResultsAcrossInstances)
{
    TempDir dir("disk_cache");
    SweepPlan plan = tinyPlan();

    ResultCache writer(dir.path());
    RunnerOptions write_opts;
    write_opts.cache = &writer;
    PlanResults first = runPlan(plan, write_opts);
    EXPECT_EQ(first.stats.simulations, 1u);

    // A fresh cache instance (a new process, in effect) finds the
    // entry on disk and reproduces the result bit-for-bit.
    ResultCache reader(dir.path());
    RunnerOptions read_opts;
    read_opts.cache = &reader;
    PlanResults second = runPlan(plan, read_opts);
    EXPECT_EQ(second.stats.diskHits, 1u);
    if (!auditRequestedByEnv()) {
        EXPECT_EQ(second.stats.simulations, 0u);
    }
    EXPECT_EQ(second.bySpec[0].seconds, first.bySpec[0].seconds);
    EXPECT_EQ(second.bySpec[0].events, first.bySpec[0].events);
}

TEST(Runner, PoisonedDiskEntryIsDetectedAndResimulated)
{
    TempDir dir("poisoned");
    SweepPlan plan = tinyPlan();

    {
        ResultCache writer(dir.path());
        RunnerOptions opts;
        opts.cache = &writer;
        runPlan(plan, opts);
    }

    // Poison every entry in the directory: truncated JSON simulating
    // a crashed writer or a bad disk.
    size_t poisoned = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path())) {
        std::ofstream out(entry.path(), std::ios::trunc);
        out << "{\"digest\": \"0000";
        ++poisoned;
    }
    ASSERT_EQ(poisoned, 1u);

    ResultCache reader(dir.path());
    RunnerOptions opts;
    opts.cache = &reader;
    PlanResults recovered = runPlan(plan, opts);
    EXPECT_EQ(recovered.stats.corrupt, 1u);
    EXPECT_EQ(recovered.stats.hits(), 0u);
    EXPECT_EQ(recovered.stats.simulations, 1u);

    // The re-simulated result matches an uncached run exactly.
    RunnerOptions fresh_opts;
    fresh_opts.noCache = true;
    PlanResults fresh = runPlan(plan, fresh_opts);
    EXPECT_EQ(recovered.bySpec[0].seconds, fresh.bySpec[0].seconds);
}

TEST(Runner, MisfiledEntryIsRejectedByDigest)
{
    TempDir dir("misfiled");
    SweepPlan plan = tinyPlan();

    {
        ResultCache writer(dir.path());
        RunnerOptions opts;
        opts.cache = &writer;
        runPlan(plan, opts);
    }

    // Rename the entry to a different digest: the content is valid
    // JSON but names the wrong experiment, so the embedded digest
    // check must reject it.
    std::filesystem::path original;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path()))
        original = entry.path();
    ScenarioSpec other = tinyPlan().specs()[0];
    other.ranks = 4;
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(other.digest()));
    std::filesystem::rename(original, original.parent_path() / name);

    SweepAxes axes = plan.axes();
    axes.rankCounts = {4};
    SweepPlan other_plan = SweepPlan::expand(axes);
    ResultCache reader(dir.path());
    RunnerOptions opts;
    opts.cache = &reader;
    PlanResults result = runPlan(other_plan, opts);
    EXPECT_EQ(result.stats.corrupt, 1u);
    EXPECT_EQ(result.stats.simulations, 1u);
}

TEST(Runner, UncacheableWorkloadsBypassTheCache)
{
    /** A workload with no signature() override. */
    class Opaque : public Workload
    {
      public:
        std::string name() const override { return "opaque"; }
        void buildTasks(Machine &machine,
                        const MpiRuntime &rt) const override
        {
            inner_.buildTasks(machine, rt);
        }

      private:
        StreamWorkload inner_{1u << 16, 2};
    };

    SweepPlan plan = tinyPlan();
    Opaque opaque;
    ResultCache cache;
    RunnerOptions opts;
    opts.cache = &cache;
    opts.workloadOverride = &opaque;

    runPlan(plan, opts);
    PlanResults second = runPlan(plan, opts);
    EXPECT_EQ(second.stats.hits(), 0u);
    EXPECT_EQ(second.stats.simulations, 1u);
    EXPECT_EQ(cache.stats().stores, 0u);
}

TEST(Runner, AuditModeValidatesHits)
{
    SweepPlan plan = tinyPlan();
    ResultCache cache;
    RunnerOptions opts;
    opts.cache = &cache;
    opts.audit = true;

    PlanResults first = runPlan(plan, opts);
    EXPECT_TRUE(first.bySpec[0].audited);

    // The hit is re-simulated and must agree with the cached entry;
    // surviving this call *is* the assertion.
    PlanResults second = runPlan(plan, opts);
    EXPECT_EQ(second.stats.hits(), 1u);
    EXPECT_EQ(second.stats.validatedHits, 1u);
    EXPECT_EQ(second.stats.simulations, 1u);
    EXPECT_EQ(second.bySpec[0].seconds, first.bySpec[0].seconds);
}
