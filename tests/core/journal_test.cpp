/**
 * @file
 * Write-ahead journal tests: append/load round trips, corrupt-tail
 * tolerance, the one-supervisor lock, and the fault-injection
 * grammar.
 */

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/journal.hh"
#include "core/runner.hh"

using namespace mcscope;

namespace {

/** Fresh empty directory under the system temp dir. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("mcscope_" + tag + "_" +
                  std::to_string(static_cast<unsigned>(getpid()))))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string &path() const { return path_; }
    std::string file(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

RunResult
sampleResult(double seconds, uint64_t events)
{
    RunResult r;
    r.valid = true;
    r.seconds = seconds;
    r.taggedSeconds[1] = seconds * 0.75;
    r.events = events;
    return r;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

TEST(Journal, AppendLoadRoundTrip)
{
    TempDir dir("journal_roundtrip");
    const std::string path = dir.file("sweep.journal");
    {
        SweepJournal journal(path);
        journal.append(0x1111, sampleResult(1.5, 10));
        journal.append(0x2222, sampleResult(2.5, 20));
        RunResult infeasible; // valid=false cells journal too
        journal.append(0x3333, infeasible);
        EXPECT_EQ(journal.appended(), 3u);
    }
    JournalLoadStats stats;
    auto loaded = loadJournal(path, &stats);
    EXPECT_EQ(stats.records, 3u);
    EXPECT_EQ(stats.corrupt, 0u);
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_DOUBLE_EQ(loaded.at(0x1111).seconds, 1.5);
    EXPECT_EQ(loaded.at(0x1111).events, 10u);
    EXPECT_DOUBLE_EQ(loaded.at(0x1111).taggedSeconds.at(1),
                     1.5 * 0.75);
    EXPECT_DOUBLE_EQ(loaded.at(0x2222).seconds, 2.5);
    EXPECT_FALSE(loaded.at(0x3333).valid);
}

TEST(Journal, MissingFileLoadsEmpty)
{
    TempDir dir("journal_missing");
    JournalLoadStats stats;
    auto loaded = loadJournal(dir.file("nonexistent.journal"), &stats);
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(stats.records, 0u);
    EXPECT_EQ(stats.corrupt, 0u);
}

TEST(Journal, ToleratesTornTail)
{
    TempDir dir("journal_torn");
    const std::string path = dir.file("sweep.journal");
    {
        SweepJournal journal(path);
        journal.append(0xaaaa, sampleResult(1.0, 5));
        journal.append(0xbbbb, sampleResult(2.0, 6));
    }
    // Simulate a supervisor killed mid-append: truncate the file
    // inside the last record.
    std::string text = readFile(path);
    ASSERT_GT(text.size(), 20u);
    std::ofstream(path, std::ios::trunc)
        << text.substr(0, text.size() - 20);

    JournalLoadStats stats;
    auto loaded = loadJournal(path, &stats);
    EXPECT_EQ(stats.records, 1u);
    EXPECT_EQ(stats.corrupt, 1u);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_DOUBLE_EQ(loaded.at(0xaaaa).seconds, 1.0);
}

TEST(Journal, SkipsMalformedMiddleLines)
{
    TempDir dir("journal_malformed");
    const std::string path = dir.file("sweep.journal");
    {
        SweepJournal journal(path);
        journal.append(0xaaaa, sampleResult(1.0, 5));
    }
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"digest\": 42}\n";        // not a valid record
        out << "complete garbage\n";       // not even JSON
    }
    {
        // Resume-style append behind the damage still loads.
        SweepJournal journal(path);
        journal.append(0xbbbb, sampleResult(2.0, 6));
    }
    JournalLoadStats stats;
    auto loaded = loadJournal(path, &stats);
    EXPECT_EQ(stats.records, 2u);
    EXPECT_EQ(stats.corrupt, 2u);
    EXPECT_EQ(loaded.size(), 2u);
}

TEST(Journal, LaterRecordWinsOnDuplicateDigest)
{
    TempDir dir("journal_dup");
    const std::string path = dir.file("sweep.journal");
    {
        SweepJournal journal(path);
        journal.append(0xcccc, sampleResult(1.0, 5));
        journal.append(0xcccc, sampleResult(1.0, 7));
    }
    auto loaded = loadJournal(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.at(0xcccc).events, 7u);
}

TEST(Journal, ParseRecordRejectsHeadersAndGarbage)
{
    EXPECT_FALSE(parseJournalRecord(
        "{\"format\":\"mcscope-journal-1\",\"model\":\"x\"}"));
    EXPECT_FALSE(parseJournalRecord("not json"));
    EXPECT_FALSE(parseJournalRecord("{\"digest\":\"zz\"}"));
    auto rec = parseJournalRecord(
        runResultToJson(0x42, sampleResult(3.0, 9)).dump());
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->first, 0x42u);
    EXPECT_DOUBLE_EQ(rec->second.seconds, 3.0);
}

TEST(Journal, PoisonedTaggedKeyReadsAsCorruptNotCrash)
{
    // Regression: a tagged-seconds key too large for int used to go
    // through std::stoi, which throws std::out_of_range straight
    // through --resume.  A poisoned entry must read as "not a
    // record" (the point is re-executed), never as a crash.
    RunResult sample = sampleResult(3.0, 9);
    std::string record = runResultToJson(0x99, sample).dump();
    const std::string needle = "\"1\":";
    const size_t pos = record.find(needle);
    ASSERT_NE(pos, std::string::npos) << record;
    record.replace(pos, needle.size(),
                   "\"99999999999999999999\":");

    EXPECT_FALSE(parseJournalRecord(record));

    // The same line inside a journal counts as corruption and the
    // well-formed neighbors still load.
    TempDir dir("journal_poisoned_tag");
    const std::string path = dir.file("sweep.journal");
    {
        SweepJournal journal(path);
        journal.append(0xaaaa, sampleResult(1.0, 5));
    }
    {
        std::ofstream out(path, std::ios::app);
        out << record << "\n";
    }
    JournalLoadStats stats;
    auto loaded = loadJournal(path, &stats);
    EXPECT_EQ(stats.records, 1u);
    EXPECT_EQ(stats.corrupt, 1u);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.count(0xaaaa));
}

TEST(JournalDeathTest, SecondSupervisorRefusesLiveJournal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    TempDir dir("journal_lock");
    const std::string path = dir.file("sweep.journal");
    SweepJournal held(path);
    // fatal() exits with code 1 after printing the refusal; the lock
    // holder above is this very process, which is certainly alive.
    EXPECT_EXIT({ SweepJournal second(path); },
                ::testing::ExitedWithCode(1),
                "locked by a live supervisor");
}

TEST(Journal, StaleLockFromDeadPidIsReplaced)
{
    TempDir dir("journal_stale");
    const std::string path = dir.file("sweep.journal");
    // A pid that cannot be alive: pid_max on Linux caps below 2^22
    // by default, and 999999999 far exceeds any configured maximum.
    std::ofstream(path + ".lock") << 999999999 << "\n";
    {
        SweepJournal journal(path);
        journal.append(0x1, sampleResult(1.0, 1));
    }
    EXPECT_EQ(loadJournal(path).size(), 1u);
    EXPECT_FALSE(std::filesystem::exists(path + ".lock"));
}

TEST(FaultPlan, ParsesGrammar)
{
    std::string error;
    auto empty = parseFaultPlan("", &error);
    ASSERT_TRUE(empty.has_value());
    EXPECT_TRUE(empty->empty());

    auto plan = parseFaultPlan("crash:3,hang:17", &error);
    ASSERT_TRUE(plan.has_value());
    ASSERT_EQ(plan->size(), 2u);
    EXPECT_EQ((*plan)[0].kind, FaultSpec::Kind::Crash);
    EXPECT_EQ((*plan)[0].point, 3u);
    EXPECT_EQ((*plan)[1].kind, FaultSpec::Kind::Hang);
    EXPECT_EQ((*plan)[1].point, 17u);

    // Whitespace and case are forgiven; that is what humans type.
    auto spaced = parseFaultPlan(" Crash : 4 ", &error);
    ASSERT_TRUE(spaced.has_value());
    EXPECT_EQ((*spaced)[0].point, 4u);
}

TEST(FaultPlan, RejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(parseFaultPlan("crash", &error));
    EXPECT_NE(error.find("kind:point"), std::string::npos);
    EXPECT_FALSE(parseFaultPlan("explode:3", &error));
    EXPECT_NE(error.find("unknown fault kind"), std::string::npos);
    EXPECT_FALSE(parseFaultPlan("crash:", &error));
    EXPECT_FALSE(parseFaultPlan("crash:x", &error));
    EXPECT_FALSE(parseFaultPlan("crash:3,,", &error));
    EXPECT_FALSE(parseFaultPlan("crash:-1", &error));
}

TEST(DigestHex, RoundTripsAndRejects)
{
    EXPECT_EQ(digestHex(0x0123456789abcdefULL), "0123456789abcdef");
    auto parsed = parseDigestHex("0123456789abcdef");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, 0x0123456789abcdefULL);
    EXPECT_FALSE(parseDigestHex("123"));             // short
    EXPECT_FALSE(parseDigestHex("0123456789abcdeg")); // non-hex
    EXPECT_FALSE(parseDigestHex("0123456789ABCDEF")); // upper-case
}

} // namespace
