/**
 * @file
 * Tests for the fork-join sweep executor: exactly-once coverage,
 * serial degradation, exception funneling, and the end-to-end
 * guarantee that a parallel option sweep is bit-identical to the
 * serial one (deterministic result ordering by index).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel_for.hh"
#include "core/registry.hh"
#include "machine/config.hh"

namespace mcscope {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (int jobs : {1, 2, 4, 7}) {
        std::vector<std::atomic<int>> hits(100);
        parallelFor(hits.size(), jobs,
                    [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1)
                << "index " << i << " with jobs=" << jobs;
    }
}

TEST(ParallelFor, HandlesEmptyAndSingleItemRanges)
{
    int calls = 0;
    parallelFor(0, 8, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(1, 8, [&](size_t i) {
        ++calls;
        EXPECT_EQ(i, 0u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, FunnelsWorkerExceptionToCaller)
{
    for (int jobs : {1, 4}) {
        std::atomic<int> ran{0};
        EXPECT_THROW(
            parallelFor(64, jobs,
                        [&](size_t i) {
                            ran.fetch_add(1);
                            if (i == 5)
                                throw std::runtime_error("boom");
                        }),
            std::runtime_error)
            << "jobs=" << jobs;
        EXPECT_GE(ran.load(), 1);
    }
}

TEST(ParallelFor, DefaultJobsReadsEnvironment)
{
    ASSERT_EQ(setenv("MCSCOPE_JOBS", "6", 1), 0);
    EXPECT_EQ(defaultJobs(), 6);
    ASSERT_EQ(setenv("MCSCOPE_JOBS", "garbage", 1), 0);
    EXPECT_EQ(defaultJobs(), 1);
    ASSERT_EQ(setenv("MCSCOPE_JOBS", "0", 1), 0);
    EXPECT_EQ(defaultJobs(), 1);
    ASSERT_EQ(unsetenv("MCSCOPE_JOBS"), 0);
    EXPECT_EQ(defaultJobs(), 1);
}

TEST(ParallelSweep, ParallelOptionSweepMatchesSerialBitForBit)
{
    auto workload = makeWorkload("stream");
    ASSERT_NE(workload, nullptr);
    MachineConfig machine = dmzConfig();
    std::vector<int> ranks = {1, 2, 4};

    OptionSweepResult serial =
        sweepOptions(machine, ranks, *workload, MpiImpl::OpenMpi,
                     SubLayer::USysV, -1, 1);
    OptionSweepResult parallel =
        sweepOptions(machine, ranks, *workload, MpiImpl::OpenMpi,
                     SubLayer::USysV, -1, 4);

    ASSERT_EQ(parallel.seconds.size(), serial.seconds.size());
    for (size_t i = 0; i < serial.seconds.size(); ++i) {
        ASSERT_EQ(parallel.seconds[i].size(), serial.seconds[i].size());
        for (size_t j = 0; j < serial.seconds[i].size(); ++j) {
            const double a = serial.seconds[i][j];
            const double b = parallel.seconds[i][j];
            if (std::isnan(a)) {
                EXPECT_TRUE(std::isnan(b))
                    << "cell (" << i << ", " << j << ")";
            } else {
                EXPECT_EQ(a, b) << "cell (" << i << ", " << j << ")";
            }
        }
    }
}

TEST(ParallelSweep, ParallelScalingMatchesSerialBitForBit)
{
    auto workload = makeWorkload("stream");
    ASSERT_NE(workload, nullptr);
    MachineConfig machine = dmzConfig();
    std::vector<int> ranks = {1, 2, 4};

    std::vector<double> serial =
        defaultScalingTimes(machine, ranks, *workload, -1, 1);
    std::vector<double> parallel =
        defaultScalingTimes(machine, ranks, *workload, -1, 4);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "rank index " << i;
}

} // namespace
} // namespace mcscope
