/**
 * @file
 * Unit tests for collective builders: message counts, deadlock
 * freedom across job sizes, and latency estimates.  Each test builds
 * a real engine run so the rendezvous matching is exercised.
 */

#include <gtest/gtest.h>

#include <memory>

#include "machine/config.hh"
#include "sim/task.hh"
#include "simmpi/collectives.hh"
#include "simmpi/comm.hh"

namespace mcscope {
namespace {

/** Run one collective across `ranks` tasks; returns the makespan. */
template <typename Builder>
SimTime
runCollective(int ranks, Builder build)
{
    MachineConfig cfg = longsConfig();
    Machine machine(cfg);
    auto placement = Placement::create(
        cfg, machine.topology(), table5Options()[0], ranks);
    EXPECT_TRUE(placement.has_value());
    MpiRuntime rt(machine, *placement);
    for (int r = 0; r < ranks; ++r) {
        std::vector<Prim> prims;
        build(rt, prims, r);
        machine.engine().addTask(std::make_unique<SequenceTask>(
            "r" + std::to_string(r), std::move(prims)));
    }
    machine.engine().run();
    return machine.engine().makespan();
}

TEST(Collectives, PowerOfTwoDetection)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(16));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(Collectives, AllReduceMessageCounts)
{
    EXPECT_EQ(allReduceMessageCount(1), 0);
    EXPECT_EQ(allReduceMessageCount(2), 1);
    EXPECT_EQ(allReduceMessageCount(8), 3);
    EXPECT_EQ(allReduceMessageCount(16), 4);
    EXPECT_EQ(allReduceMessageCount(6), 10); // ring fallback: 2(p-1)
}

class CollectiveSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(CollectiveSizes, AllReduceCompletes)
{
    int p = GetParam();
    SimTime t = runCollective(p, [](const MpiRuntime &rt,
                                    std::vector<Prim> &out, int rank) {
        appendAllReduce(rt, out, rank, 1024.0, 0x10000ULL);
    });
    if (p > 1) {
        EXPECT_GT(t, 0.0);
    }
}

TEST_P(CollectiveSizes, AllToAllCompletes)
{
    int p = GetParam();
    SimTime t = runCollective(p, [](const MpiRuntime &rt,
                                    std::vector<Prim> &out, int rank) {
        appendAllToAll(rt, out, rank, 4096.0, 0x20000ULL);
    });
    if (p > 1) {
        EXPECT_GT(t, 0.0);
    }
}

TEST_P(CollectiveSizes, RingShiftCompletes)
{
    int p = GetParam();
    SimTime t = runCollective(p, [](const MpiRuntime &rt,
                                    std::vector<Prim> &out, int rank) {
        appendRingShift(rt, out, rank, 4096.0, 0x30000ULL);
    });
    if (p > 1) {
        EXPECT_GT(t, 0.0);
    }
}

TEST_P(CollectiveSizes, ExchangeCompletes)
{
    int p = GetParam();
    SimTime t = runCollective(p, [](const MpiRuntime &rt,
                                    std::vector<Prim> &out, int rank) {
        appendExchange(rt, out, rank, 4096.0, 0x40000ULL);
    });
    if (p > 1) {
        EXPECT_GT(t, 0.0);
    }
}

// 3, 5, 6 exercise the non-power-of-two fallbacks; odd sizes exercise
// ring parity handling.
INSTANTIATE_TEST_SUITE_P(JobSizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 16));

TEST(Collectives, BiggerMessagesTakeLonger)
{
    auto run = [](double bytes) {
        return runCollective(8, [bytes](const MpiRuntime &rt,
                                        std::vector<Prim> &out,
                                        int rank) {
            appendAllToAll(rt, out, rank, bytes, 0x50000ULL);
        });
    };
    EXPECT_GT(run(1 << 20), run(1 << 12));
}

TEST(Collectives, AllReduceLatencyEstimateGrowsWithRanks)
{
    MachineConfig cfg = longsConfig();
    Machine machine(cfg);
    SimTime prev = 0.0;
    for (int p : {2, 4, 8, 16}) {
        auto placement = Placement::create(
            cfg, machine.topology(), table5Options()[0], p);
        ASSERT_TRUE(placement.has_value());
        MpiRuntime rt(machine, *placement);
        SimTime est = allReduceLatencyEstimate(rt, 0, 16.0);
        EXPECT_GT(est, prev);
        prev = est;
    }
}

TEST(Collectives, SysVAllReduceSlowerThanUSysV)
{
    MachineConfig cfg = longsConfig();
    auto run = [&cfg](SubLayer sl) {
        Machine machine(cfg);
        auto placement = Placement::create(
            cfg, machine.topology(), table5Options()[0], 8);
        MpiRuntime rt(machine, *placement, MpiImpl::Lam, sl);
        for (int r = 0; r < 8; ++r) {
            std::vector<Prim> prims;
            appendAllReduce(rt, prims, r, 16.0, 0x60000ULL);
            machine.engine().addTask(std::make_unique<SequenceTask>(
                "r" + std::to_string(r), std::move(prims)));
        }
        machine.engine().run();
        return machine.engine().makespan();
    };
    EXPECT_GT(run(SubLayer::SysV), 2.0 * run(SubLayer::USysV));
}

} // namespace
} // namespace mcscope
