/**
 * @file
 * Unit tests for the simulated MPI runtime: sub-layer and
 * implementation models, message overheads, transfer shaping, and
 * same-die fast paths.
 */

#include <gtest/gtest.h>

#include <memory>

#include "machine/config.hh"
#include "simmpi/comm.hh"
#include "simmpi/implementation.hh"
#include "simmpi/sublayer.hh"

namespace mcscope {
namespace {

/** Helper assembling machine + placement + runtime for a test body. */
struct Rig
{
    Machine machine;
    std::optional<Placement> placement;
    std::unique_ptr<MpiRuntime> rt;

    Rig(const MachineConfig &cfg, const NumactlOption &opt, int ranks,
        MpiImpl impl = MpiImpl::OpenMpi,
        SubLayer sl = SubLayer::USysV)
        : machine(cfg)
    {
        placement = Placement::create(cfg, machine.topology(), opt,
                                      ranks);
        EXPECT_TRUE(placement.has_value());
        rt = std::make_unique<MpiRuntime>(machine, *placement, impl, sl);
    }
};

NumactlOption
twoPerSocketLocal()
{
    return table5Options()[3];
}

NumactlOption
onePerSocketLocal()
{
    return table5Options()[1];
}

TEST(SubLayer, SysVIsMuchSlowerThanUSysV)
{
    SubLayerModel sysv = subLayerModel(SubLayer::SysV);
    SubLayerModel usysv = subLayerModel(SubLayer::USysV);
    EXPECT_GT(sysv.lockPairCost, 10.0 * usysv.lockPairCost);
}

TEST(Implementation, PersonalityOrderingMatchesFigure14)
{
    MpiImplModel mpich = mpiImplModel(MpiImpl::Mpich2);
    MpiImplModel lam = mpiImplModel(MpiImpl::Lam);
    MpiImplModel ompi = mpiImplModel(MpiImpl::OpenMpi);

    // Latency: LAM < OpenMPI < MPICH2.
    EXPECT_LT(lam.baseLatency, ompi.baseLatency);
    EXPECT_LT(ompi.baseLatency, mpich.baseLatency);

    // Bandwidth winners by size band.
    double small = 4.0 * 1024.0;
    double mid = 64.0 * 1024.0;
    double large = 1024.0 * 1024.0;
    EXPECT_GT(lam.copyEfficiency(small), ompi.copyEfficiency(small));
    EXPECT_GT(lam.copyEfficiency(small), mpich.copyEfficiency(small));
    EXPECT_GT(ompi.copyEfficiency(mid), lam.copyEfficiency(mid));
    EXPECT_GT(mpich.copyEfficiency(large), ompi.copyEfficiency(large));
    EXPECT_GT(mpich.copyEfficiency(large), lam.copyEfficiency(large));
}

TEST(Implementation, CopyEfficiencyIsSmoothAndBounded)
{
    for (MpiImpl impl : allMpiImpls()) {
        MpiImplModel m = mpiImplModel(impl);
        double prev = m.copyEfficiency(1.0);
        for (double b = 1.0; b <= 8.0 * 1024.0 * 1024.0; b *= 2.0) {
            double e = m.copyEfficiency(b);
            EXPECT_GT(e, 0.0);
            EXPECT_LE(e, 1.0);
            // No jumps bigger than the plateau gaps.
            EXPECT_LT(std::abs(e - prev), 0.35);
            prev = e;
        }
    }
}

TEST(Comm, SameDieLatencyBeatsCrossSocket)
{
    Rig rig(dmzConfig(), twoPerSocketLocal(), 4);
    // Ranks 0,1 share socket 0; rank 2 lives on socket 1.
    SimTime same = rig.rt->messageOverhead(0, 1, 1024.0);
    SimTime cross = rig.rt->messageOverhead(0, 2, 1024.0);
    EXPECT_LT(same, cross);
}

TEST(Comm, SameDieBandwidthBeatsCrossSocket)
{
    Rig rig(dmzConfig(), twoPerSocketLocal(), 4);
    double same = rig.rt->transferBandwidth(0, 1, 1 << 20);
    double cross = rig.rt->transferBandwidth(0, 2, 1 << 20);
    EXPECT_GT(same, cross);
    // Paper: ~10-13% benefit.
    EXPECT_NEAR(same / cross, 1.12, 0.05);
}

TEST(Comm, SysVDominatesSmallMessageOverhead)
{
    Rig usysv(dmzConfig(), twoPerSocketLocal(), 2, MpiImpl::Lam,
              SubLayer::USysV);
    Rig sysv(dmzConfig(), twoPerSocketLocal(), 2, MpiImpl::Lam,
             SubLayer::SysV);
    SimTime fast = usysv.rt->messageOverhead(0, 1, 8.0);
    SimTime slow = sysv.rt->messageOverhead(0, 1, 8.0);
    EXPECT_GT(slow, 3.0 * fast);
}

TEST(Comm, HopsAddLatencyOnTheLadder)
{
    Rig rig(longsConfig(), onePerSocketLocal(), 8);
    // Find the pair with the most hops under this placement.
    SimTime min_lat = 1e9, max_lat = 0.0;
    for (int a = 0; a < 8; ++a) {
        for (int b = 0; b < 8; ++b) {
            if (a == b)
                continue;
            SimTime l = rig.rt->messageOverhead(a, b, 8.0);
            min_lat = std::min(min_lat, l);
            max_lat = std::max(max_lat, l);
        }
    }
    EXPECT_GT(max_lat, min_lat);
}

TEST(Comm, LatencyNoiseScalesOverhead)
{
    Rig rig(dmzConfig(), twoPerSocketLocal(), 2);
    SimTime quiet = rig.rt->messageOverhead(0, 1, 64.0);
    rig.rt->setLatencyNoiseFactor(1.5);
    SimTime noisy = rig.rt->messageOverhead(0, 1, 64.0);
    EXPECT_NEAR(noisy / quiet, 1.5, 1e-9);
}

TEST(Comm, RendezvousProtocolAddsCostAboveThreshold)
{
    Rig rig(dmzConfig(), twoPerSocketLocal(), 2, MpiImpl::OpenMpi);
    const MpiImplModel &m = rig.rt->implModel();
    SimTime below =
        rig.rt->messageOverhead(0, 1, m.eagerThreshold / 2.0);
    SimTime above =
        rig.rt->messageOverhead(0, 1, m.eagerThreshold * 2.0);
    EXPECT_GT(above, below);
}

TEST(Comm, PairKeyIsSymmetricAndRoundSeparated)
{
    EXPECT_EQ(MpiRuntime::pairKey(0, 0, 3, 5),
              MpiRuntime::pairKey(0, 0, 5, 3));
    EXPECT_NE(MpiRuntime::pairKey(0, 0, 3, 5),
              MpiRuntime::pairKey(0, 1, 3, 5));
    EXPECT_NE(MpiRuntime::pairKey(0, 0, 3, 5),
              MpiRuntime::pairKey(0, 0, 3, 6));
}

TEST(Comm, MembindBuffersShapeTransferPath)
{
    // Under membind, all comm buffers sit on node 0: transfers between
    // ranks far from node 0 still hammer node 0's controller.
    Rig rig(longsConfig(), table5Options()[2], 8);
    Work w = rig.rt->transfer(4, 5, 1 << 20);
    Machine &m = rig.machine;
    bool touches_node0 = false;
    for (ResourceId r : w.path)
        touches_node0 = touches_node0 || r == m.memResource(0);
    EXPECT_TRUE(touches_node0);
}

} // namespace
} // namespace mcscope
