/**
 * @file
 * Tests for the 2-D grid halo exchange: deadlock freedom across grid
 * shapes, volume accounting, and the periodic/open edge distinction.
 */

#include <gtest/gtest.h>

#include <memory>

#include "machine/config.hh"
#include "sim/task.hh"
#include "simmpi/collectives.hh"
#include "simmpi/comm.hh"

namespace mcscope {
namespace {

SimTime
runGridHalo(int rows, int cols, double bytes_ew, double bytes_ns,
            int iterations = 1)
{
    MachineConfig cfg = longsConfig();
    int ranks = rows * cols;
    Machine machine(cfg);
    auto placement = Placement::create(
        cfg, machine.topology(), table5Options()[0], ranks);
    EXPECT_TRUE(placement.has_value());
    MpiRuntime rt(machine, *placement);
    for (int r = 0; r < ranks; ++r) {
        std::vector<Prim> body;
        appendGridHalo(rt, body, r, rows, cols, bytes_ew, bytes_ns,
                       0x10000ULL);
        machine.engine().addTask(std::make_unique<LoopTask>(
            "g" + std::to_string(r), std::vector<Prim>{},
            std::move(body), iterations));
    }
    machine.engine().run();
    return machine.engine().makespan();
}

struct GridShape
{
    int rows;
    int cols;
};

class GridHaloShapes : public ::testing::TestWithParam<GridShape>
{
};

TEST_P(GridHaloShapes, CompletesWithoutDeadlock)
{
    auto [rows, cols] = GetParam();
    SimTime t = runGridHalo(rows, cols, 4096.0, 4096.0, 3);
    if (rows * cols > 1) {
        EXPECT_GT(t, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridHaloShapes,
    ::testing::Values(GridShape{1, 2}, GridShape{2, 1}, GridShape{2, 2},
                      GridShape{1, 8}, GridShape{8, 1}, GridShape{2, 4},
                      GridShape{4, 4}, GridShape{2, 8},
                      GridShape{3, 5}, GridShape{1, 16}));

TEST(GridHalo, SingleRankIsFree)
{
    EXPECT_DOUBLE_EQ(runGridHalo(1, 1, 1e6, 1e6), 0.0);
}

TEST(GridHalo, MoreVolumeTakesLonger)
{
    SimTime small = runGridHalo(4, 4, 4096.0, 4096.0);
    SimTime big = runGridHalo(4, 4, 1 << 20, 1 << 20);
    EXPECT_GT(big, small);
}

TEST(GridHalo, RowOnlyGridSkipsNorthSouthVolume)
{
    // 1 x 16: only the periodic east-west ring carries bytes, so
    // inflating bytes_ns must not change the time.
    SimTime a = runGridHalo(1, 16, 65536.0, 1.0);
    SimTime b = runGridHalo(1, 16, 65536.0, 1e9);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(GridHalo, ShapeMismatchPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_DEATH(
        {
            MachineConfig cfg = longsConfig();
            Machine machine(cfg);
            auto placement = Placement::create(
                cfg, machine.topology(), table5Options()[0], 8);
            MpiRuntime rt(machine, *placement);
            std::vector<Prim> body;
            appendGridHalo(rt, body, 0, 3, 3, 1.0, 1.0, 0x1ULL);
        },
        "does not cover");
}

} // namespace
} // namespace mcscope
