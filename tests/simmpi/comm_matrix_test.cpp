/**
 * @file
 * Tests for the communication-matrix recorder.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/registry.hh"
#include "machine/config.hh"
#include "simmpi/collectives.hh"
#include "simmpi/comm.hh"
#include "simmpi/comm_matrix.hh"

namespace mcscope {
namespace {

struct Rig
{
    Machine machine;
    std::optional<Placement> placement;
    std::unique_ptr<MpiRuntime> rt;
    CommMatrix matrix;

    explicit Rig(int ranks)
        : machine(longsConfig()), matrix(ranks)
    {
        placement = Placement::create(longsConfig(),
                                      machine.topology(),
                                      table5Options()[0], ranks);
        rt = std::make_unique<MpiRuntime>(machine, *placement);
        rt->setCommMatrix(&matrix);
    }
};

TEST(CommMatrix, RecordsSendsDirectionally)
{
    Rig rig(4);
    std::vector<Prim> out;
    rig.rt->appendSend(out, 0, 3, 1000.0, 0x1ULL);
    rig.rt->appendSend(out, 0, 3, 500.0, 0x2ULL);
    rig.rt->appendRecv(out, 3, 0, 1000.0, 0x1ULL); // receiver: no tally
    EXPECT_DOUBLE_EQ(rig.matrix.bytes(0, 3), 1500.0);
    EXPECT_EQ(rig.matrix.messages(0, 3), 2u);
    EXPECT_DOUBLE_EQ(rig.matrix.bytes(3, 0), 0.0);
    EXPECT_DOUBLE_EQ(rig.matrix.totalBytes(), 1500.0);
}

TEST(CommMatrix, AllReduceTouchesLogPeers)
{
    Rig rig(8);
    std::vector<Prim> out;
    for (int r = 0; r < 8; ++r)
        appendAllReduce(*rig.rt, out, r, 64.0, 0x1000ULL);
    // Recursive doubling: each rank sends 3 messages of 64 B.
    EXPECT_EQ(rig.matrix.totalMessages(), 24u);
    EXPECT_DOUBLE_EQ(rig.matrix.totalBytes(), 24.0 * 64.0);
    for (int r = 0; r < 8; ++r) {
        int sent_to = 0;
        for (int d = 0; d < 8; ++d)
            sent_to += rig.matrix.messages(r, d) > 0;
        EXPECT_EQ(sent_to, 3);
    }
}

TEST(CommMatrix, HopHistogramCoversAllBytes)
{
    Rig rig(8);
    std::vector<Prim> out;
    for (int r = 0; r < 8; ++r)
        appendAllToAll(*rig.rt, out, r, 4096.0, 0x2000ULL);
    auto hist = rig.matrix.bytesByHops(*rig.rt);
    double sum = 0.0;
    for (double v : hist)
        sum += v;
    EXPECT_DOUBLE_EQ(sum, rig.matrix.totalBytes());
    // One rank per socket on the ladder: some traffic must be
    // multi-hop.
    double far = 0.0;
    for (size_t h = 2; h < hist.size(); ++h)
        far += hist[h];
    EXPECT_GT(far, 0.0);
}

TEST(CommMatrix, WorkloadPatternsDiffer)
{
    // POP's halo pattern must concentrate at short distances more
    // than FT's all-to-all.
    auto fraction_far = [](const char *name) {
        Rig rig(8);
        auto w = makeWorkload(name);
        w->buildTasks(rig.machine, *rig.rt);
        auto hist = rig.matrix.bytesByHops(*rig.rt);
        double total = 0.0, far = 0.0;
        for (size_t h = 0; h < hist.size(); ++h) {
            total += hist[h];
            if (h >= 2)
                far += hist[h];
        }
        return far / total;
    };
    EXPECT_LT(fraction_far("pop-x1"), fraction_far("nas-ft-b"));
}

TEST(CommMatrix, RendersAsTable)
{
    Rig rig(2);
    std::vector<Prim> out;
    rig.rt->appendSend(out, 0, 1, 2048.0, 0x1ULL);
    std::string s = rig.matrix.str();
    EXPECT_NE(s.find("2KB"), std::string::npos);
    EXPECT_NE(s.find("src"), std::string::npos);
}

} // namespace
} // namespace mcscope
