/**
 * @file
 * Differential test of the zero-allocation fair-share allocator
 * against the retained reference implementation.
 *
 * fairShareRatesInto() (the engine hot path, reusable workspace) must
 * produce exactly the rates of fairShareRatesReference() (the
 * original allocation-per-call implementation) on every input.  This
 * drives ~1k randomized flow sets -- varying resource counts, path
 * lengths (including paths long enough to spill PathVec's inline
 * storage), caps, and the degenerate empty-path / cap-only flows --
 * through both, reusing one scratch workspace across all of them so
 * stale-state bugs would surface as cross-set contamination.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/fairshare.hh"
#include "util/rng.hh"

namespace mcscope {
namespace {

struct Scenario
{
    std::vector<double> caps;
    std::vector<FairShareFlow> flows;
};

Scenario
randomScenario(Rng &rng)
{
    Scenario s;
    const int nr = 1 + static_cast<int>(rng.below(8));
    const int nf = static_cast<int>(rng.below(33)); // may be zero
    for (int r = 0; r < nr; ++r)
        s.caps.push_back(rng.uniform(0.5, 2000.0));
    for (int f = 0; f < nf; ++f) {
        FairShareFlow fl;
        const uint64_t kind = rng.below(10);
        if (kind == 0) {
            // Degenerate: no path, no cap (instantaneous).
        } else if (kind == 1) {
            // Cap-only flow (latency-limited stream off-path).
            fl.rateCap = rng.uniform(0.1, 500.0);
        } else {
            // Path of 1..6 hops; > 4 exercises PathVec heap spill.
            const int plen = 1 + static_cast<int>(rng.below(6));
            for (int k = 0; k < plen; ++k) {
                auto r = static_cast<ResourceId>(rng.below(nr));
                bool dup = false;
                for (ResourceId e : fl.path)
                    dup = dup || e == r;
                if (!dup)
                    fl.path.push_back(r);
            }
            if (rng.below(3) == 0)
                fl.rateCap = rng.uniform(0.1, 500.0);
        }
        s.flows.push_back(std::move(fl));
    }
    return s;
}

TEST(FairShareDiff, OptimizedMatchesReferenceOnRandomFlowSets)
{
    Rng rng(0x5eedf00dULL);
    FairShareScratch scratch; // deliberately reused across all sets
    for (int iter = 0; iter < 1000; ++iter) {
        Scenario s = randomScenario(rng);
        std::vector<double> ref =
            fairShareRatesReference(s.caps, s.flows);
        fairShareRatesInto(s.caps, s.flows, scratch);
        ASSERT_EQ(scratch.rates.size(), ref.size())
            << "iteration " << iter;
        for (size_t f = 0; f < ref.size(); ++f) {
            if (std::isinf(ref[f])) {
                EXPECT_TRUE(std::isinf(scratch.rates[f]))
                    << "iteration " << iter << " flow " << f;
                continue;
            }
            EXPECT_NEAR(scratch.rates[f], ref[f],
                        1e-9 * std::max(1.0, std::abs(ref[f])))
                << "iteration " << iter << " flow " << f;
        }
    }
}

TEST(FairShareDiff, WrapperMatchesScratchVariant)
{
    Rng rng(0xabcdef12ULL);
    FairShareScratch scratch;
    for (int iter = 0; iter < 50; ++iter) {
        Scenario s = randomScenario(rng);
        std::vector<double> wrapped = fairShareRates(s.caps, s.flows);
        fairShareRatesInto(s.caps, s.flows, scratch);
        ASSERT_EQ(wrapped.size(), scratch.rates.size());
        for (size_t f = 0; f < wrapped.size(); ++f)
            EXPECT_EQ(wrapped[f], scratch.rates[f]);
    }
}

TEST(FairShareDiff, ScratchReuseDoesNotLeakStateAcrossShrinkingSets)
{
    // A large set followed by a tiny one: every scratch array must be
    // re-extent-ed, not merely overwritten in place.
    std::vector<double> caps_big(16, 100.0);
    std::vector<FairShareFlow> big;
    for (int f = 0; f < 64; ++f) {
        FairShareFlow fl;
        fl.path = {static_cast<ResourceId>(f % 16)};
        big.push_back(std::move(fl));
    }
    FairShareScratch scratch;
    fairShareRatesInto(caps_big, big, scratch);
    ASSERT_EQ(scratch.rates.size(), 64u);

    std::vector<double> caps_small = {10.0};
    std::vector<FairShareFlow> small;
    FairShareFlow fl;
    fl.path = {0};
    small.push_back(std::move(fl));
    fairShareRatesInto(caps_small, small, scratch);
    ASSERT_EQ(scratch.rates.size(), 1u);
    EXPECT_DOUBLE_EQ(scratch.rates[0], 10.0);
}

} // namespace
} // namespace mcscope
