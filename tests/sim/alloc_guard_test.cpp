/**
 * @file
 * Tests for the Debug-build allocation guard (sim/alloc_guard.hh) and
 * the Engine::run zero-allocation contract it enforces (DESIGN.md
 * §12).
 *
 * The positive direction -- representative workloads complete without
 * tripping the in-engine assert -- and the negative direction -- the
 * retained Reference allocator, which reallocates per rerun by
 * design, aborts the run when enforcement is left on -- are both
 * covered, so the guard is proven live, not just compiled in.  The
 * whole suite skips on builds without MCSCOPE_ALLOC_GUARD
 * (RelWithDebInfo tier-1 runs it as a no-op smoke test).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "core/experiment.hh"
#include "core/registry.hh"
#include "machine/config.hh"
#include "machine/machine.hh"
#include "sim/alloc_guard.hh"

namespace mcscope {
namespace {

ExperimentConfig
defaultConfig()
{
    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = table5Options().front(); // Default
    cfg.ranks = 4;
    return cfg;
}

TEST(AllocGuard, CompileTimeAndRuntimeViewsAgree)
{
    EXPECT_EQ(alloc_guard::kEnabled, alloc_guard::compiledIn());
    // Never armed at rest, regardless of build flavor.
    EXPECT_FALSE(alloc_guard::armed());
}

TEST(AllocGuard, CountsAllocationsOnlyWhileArmed)
{
    if (!alloc_guard::compiledIn())
        GTEST_SKIP() << "MCSCOPE_ALLOC_GUARD not compiled in";

    volatile char *sink = new char[64];
    delete[] const_cast<char *>(sink);
    const uint64_t allocs0 = alloc_guard::allocationCount();
    const uint64_t frees0 = alloc_guard::deallocationCount();

    alloc_guard::arm();
    EXPECT_TRUE(alloc_guard::armed());
    sink = new char[64];
    delete[] const_cast<char *>(sink);
    alloc_guard::disarm();
    EXPECT_FALSE(alloc_guard::armed());

    EXPECT_GT(alloc_guard::allocationCount(), allocs0);
    EXPECT_GT(alloc_guard::deallocationCount(), frees0);

    // Disarmed traffic leaves the counters alone.
    const uint64_t allocs1 = alloc_guard::allocationCount();
    sink = new char[64];
    delete[] const_cast<char *>(sink);
    EXPECT_EQ(alloc_guard::allocationCount(), allocs1);
}

TEST(AllocGuard, CountsEveryOperatorVariant)
{
    if (!alloc_guard::compiledIn())
        GTEST_SKIP() << "MCSCOPE_ALLOC_GUARD not compiled in";

    // The interposition must cover the whole operator family --
    // aligned, nothrow, array, sized -- or a container switch in the
    // hot loop could allocate invisibly.
    struct alignas(64) Wide
    {
        char pad[64];
    };

    alloc_guard::arm();
    const uint64_t allocs0 = alloc_guard::allocationCount();
    const uint64_t frees0 = alloc_guard::deallocationCount();

    Wide *w = new Wide;        // over-aligned new / delete
    delete w;
    Wide *wa = new Wide[3];    // over-aligned new[] / delete[]
    delete[] wa;
    int *ia = new int[8];      // sized delete[]
    delete[] ia;
    char *nt = new (std::nothrow) char;       // nothrow new
    delete nt;
    char *nta = new (std::nothrow) char[16];  // nothrow new[]
    delete[] nta;
    Wide *wn = new (std::nothrow) Wide;       // aligned nothrow new
    delete wn;
    Wide *wna = new (std::nothrow) Wide[2];   // aligned nothrow new[]
    delete[] wna;
    ::operator delete(nullptr);               // null free is a no-op

    alloc_guard::disarm();
    EXPECT_EQ(alloc_guard::allocationCount() - allocs0, 7u);
    EXPECT_EQ(alloc_guard::deallocationCount() - frees0, 7u);
}

TEST(AllocGuard, PauseSuppressesCountingAndNests)
{
    if (!alloc_guard::compiledIn())
        GTEST_SKIP() << "MCSCOPE_ALLOC_GUARD not compiled in";

    alloc_guard::arm();
    const uint64_t allocs0 = alloc_guard::allocationCount();
    {
        alloc_guard::Pause outer;
        alloc_guard::Pause inner;
        volatile char *sink = new char[64];
        delete[] const_cast<char *>(sink);
    }
    EXPECT_EQ(alloc_guard::allocationCount(), allocs0);

    // Counting resumes once every Pause has unwound.
    volatile char *sink = new char[64];
    delete[] const_cast<char *>(sink);
    alloc_guard::disarm();
    EXPECT_GT(alloc_guard::allocationCount(), allocs0);
}

TEST(AllocGuard, SteadyStateLoopIsAllocationFree)
{
    if (!alloc_guard::compiledIn())
        GTEST_SKIP() << "MCSCOPE_ALLOC_GUARD not compiled in";

    // Engine::run arms the guard itself and hard-asserts on any
    // steady-state allocation without scratch-capacity growth, so a
    // valid result IS the proof.  Cover both reference machines and
    // every registered workload -- the 8-socket Longs ladder is the
    // one that produces the longest resource paths (and would catch a
    // PathVec inline capacity regression).
    for (const std::string &name : registeredWorkloads()) {
        auto workload = makeWorkload(name);
        ASSERT_NE(workload, nullptr);

        ExperimentConfig cfg = defaultConfig();
        RunResult dmz = runExperiment(cfg, *workload);
        EXPECT_TRUE(dmz.valid) << name;

        cfg.machine = longsConfig();
        cfg.option = table5Options()[1]; // One MPI + Local Alloc
        cfg.ranks = 8;
        RunResult longs = runExperiment(cfg, *workload);
        EXPECT_TRUE(longs.valid) << name;
    }
}

TEST(AllocGuard, EnvForcedReferenceAllocatorDisablesEnforcement)
{
    // MCSCOPE_REFERENCE_ALLOCATOR=1 is the user-facing A/B switch;
    // it must not turn every Debug run into an abort.
    ::setenv("MCSCOPE_REFERENCE_ALLOCATOR", "1", 1);
    Machine machine(dmzConfig());
    ::unsetenv("MCSCOPE_REFERENCE_ALLOCATOR");

    EXPECT_EQ(machine.engine().allocator(),
              Engine::AllocatorKind::Reference);
    EXPECT_FALSE(machine.engine().allocGuardEnforced());

    auto workload = makeWorkload(registeredWorkloads().front());
    ASSERT_NE(workload, nullptr);
    RunResult res =
        runExperimentOn(machine, defaultConfig(), *workload);
    EXPECT_TRUE(res.valid);
}

TEST(AllocGuardDeathTest, ReferenceAllocatorTripsContract)
{
    if (!alloc_guard::compiledIn())
        GTEST_SKIP() << "MCSCOPE_ALLOC_GUARD not compiled in";

    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Explicitly selecting the Reference oracle keeps enforcement on
    // (unlike the env switch above): its per-rerun reallocation must
    // trip the contract once scratch capacities stop growing.  This
    // is the proof the guard can actually fire.
    EXPECT_DEATH(
        {
            auto workload =
                makeWorkload(registeredWorkloads().front());
            Machine machine(dmzConfig());
            machine.engine().setAllocator(
                Engine::AllocatorKind::Reference);
            runExperimentOn(machine, defaultConfig(), *workload);
        },
        "zero-allocation contract violated");
}

} // namespace
} // namespace mcscope
