/**
 * @file
 * Differential tests of the engine's optimized event core against the
 * retained reference path.
 *
 * The dirty-set incremental allocator + calendar queue + SoA flow
 * state (AllocatorKind::Optimized) must be *bit-identical* to the
 * reference allocator path (AllocatorKind::Reference, which re-solves
 * every flow through fairShareRatesReference) -- not merely close:
 * identical audit digests, identical makespans to the last mantissa
 * bit, identical per-task finish times, identical event counts.  This
 * drives ~1k randomized scenarios (random paths and caps, empty-path
 * capped flows, delays, barriers, rendezvous pairs) through both.
 *
 * A second suite pins the subset solver itself: on a closed connected
 * component, fairShareSolveSubset must reproduce the rates of a full
 * fairShareRatesReference solve bit-for-bit, which is the algebraic
 * fact the incremental engine path rests on (DESIGN.md section 13).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "sim/audit.hh"
#include "sim/engine.hh"
#include "sim/fairshare.hh"
#include "sim/task.hh"
#include "util/rng.hh"

namespace mcscope {
namespace {

uint64_t
bits(double v)
{
    uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/** One randomized multi-task scenario. */
struct Scenario
{
    std::vector<double> caps;
    // Per-task primitive scripts.
    std::vector<std::vector<Prim>> scripts;
};

Work
randomWork(Rng &rng, int nr)
{
    Work w;
    w.amount = rng.uniform(0.5, 2000.0);
    w.tag = static_cast<int>(rng.below(4));
    const uint64_t kind = rng.below(12);
    if (kind == 0) {
        // Empty path, capped: pure latency-limited stream.  (The
        // empty-path *uncapped* instantaneous case is exercised by
        // engine_test; under audit its infinite rate is rejected by
        // design, so it stays out of the audited differential runs.)
        w.rateCap = rng.uniform(0.1, 500.0);
        return w;
    }
    const int plen = 1 + static_cast<int>(rng.below(4));
    for (int k = 0; k < plen; ++k) {
        auto r = static_cast<ResourceId>(rng.below(nr));
        bool dup = false;
        for (ResourceId e : w.path)
            dup = dup || e == r;
        if (!dup)
            w.path.push_back(r);
    }
    if (rng.below(3) == 0)
        w.rateCap = rng.uniform(0.1, 500.0);
    return w;
}

Scenario
randomScenario(Rng &rng)
{
    Scenario s;
    const int nr = 1 + static_cast<int>(rng.below(6));
    const int nt = 1 + static_cast<int>(rng.below(8));
    for (int r = 0; r < nr; ++r)
        s.caps.push_back(rng.uniform(0.5, 2000.0));
    s.scripts.resize(nt);

    // Tasks run `nseg` segments of private work separated by global
    // barriers, so the scripts can differ per task without deadlock;
    // after each barrier, adjacent task pairs exchange a rendezvous.
    const int nseg = 1 + static_cast<int>(rng.below(3));
    for (int seg = 0; seg < nseg; ++seg) {
        for (int t = 0; t < nt; ++t) {
            const int nprims = static_cast<int>(rng.below(5));
            for (int p = 0; p < nprims; ++p) {
                if (rng.below(4) == 0) {
                    Delay d;
                    d.seconds = rng.uniform(0.0, 2.0);
                    d.tag = static_cast<int>(rng.below(4));
                    s.scripts[t].push_back(d);
                } else {
                    s.scripts[t].push_back(randomWork(rng, nr));
                }
            }
            if (nt > 1) {
                SyncAll barrier;
                barrier.key = 900000 + seg;
                barrier.expected = nt;
                s.scripts[t].push_back(barrier);
            }
        }
        // Rendezvous pairs (2k, 2k+1) right after the barrier: both
        // sides are guaranteed to arrive, the even side carries.
        for (int t = 0; t + 1 < nt; t += 2) {
            Rendezvous rv;
            rv.key = 800000 + static_cast<uint64_t>(seg) * 1000 + t;
            rv.transfer = randomWork(rng, nr);
            Rendezvous peer = rv;
            rv.carrier = true;
            s.scripts[t].push_back(rv);
            s.scripts[t + 1].push_back(peer);
        }
    }
    return s;
}

struct RunOutcome
{
    uint64_t digest = 0;
    uint64_t checks = 0;
    uint64_t events = 0;
    uint64_t makespanBits = 0;
    std::vector<uint64_t> finishBits;
};

RunOutcome
runScenario(const Scenario &s, Engine::AllocatorKind kind)
{
    Engine e;
    e.setAllocator(kind);
    // The Reference oracle allocates by design (fresh vectors per
    // solve); only the Optimized path carries the zero-allocation
    // contract, and these runs keep it enforced.
    if (kind == Engine::AllocatorKind::Reference)
        e.setAllocGuardEnforced(false);
    e.setAuditor(std::make_unique<Auditor>());
    for (size_t r = 0; r < s.caps.size(); ++r)
        e.addResource("r" + std::to_string(r), s.caps[r]);
    for (size_t t = 0; t < s.scripts.size(); ++t)
        e.addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(t), s.scripts[t]));
    e.run();
    RunOutcome out;
    out.digest = e.auditor()->digest();
    out.checks = e.auditor()->allocationsChecked();
    out.events = e.eventCount();
    out.makespanBits = bits(e.makespan());
    for (int t = 0; t < e.taskCount(); ++t)
        out.finishBits.push_back(bits(e.taskFinishTime(t)));
    return out;
}

TEST(EngineDiff, OptimizedIsBitIdenticalToReferenceOnRandomScenarios)
{
    Rng rng(0x071f00dbeefULL);
    for (int iter = 0; iter < 1000; ++iter) {
        Scenario s = randomScenario(rng);
        RunOutcome opt =
            runScenario(s, Engine::AllocatorKind::Optimized);
        RunOutcome ref =
            runScenario(s, Engine::AllocatorKind::Reference);
        ASSERT_EQ(opt.digest, ref.digest) << "iteration " << iter;
        ASSERT_EQ(opt.events, ref.events) << "iteration " << iter;
        ASSERT_EQ(opt.checks, ref.checks) << "iteration " << iter;
        ASSERT_EQ(opt.makespanBits, ref.makespanBits)
            << "iteration " << iter;
        ASSERT_EQ(opt.finishBits, ref.finishBits)
            << "iteration " << iter;
    }
}

TEST(EngineDiff, OptimizedRunsAreDeterministicAcrossRepeats)
{
    Rng rng(0x1234ULL);
    Scenario s = randomScenario(rng);
    RunOutcome a = runScenario(s, Engine::AllocatorKind::Optimized);
    RunOutcome b = runScenario(s, Engine::AllocatorKind::Optimized);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.makespanBits, b.makespanBits);
    EXPECT_EQ(a.finishBits, b.finishBits);
    EXPECT_EQ(a.events, b.events);
}

TEST(EngineDiff, OptimizedEngineActuallySolvesIncrementally)
{
    // Many tasks on disjoint private resources: after warmup, every
    // re-solve's dirty closure is a single flow, so the incremental
    // counter must dominate.  Guards against the dispatch silently
    // always taking the full-solve fallback (which would pass every
    // bit-identity test while losing the entire speedup).
    Engine e;
    e.setAllocator(Engine::AllocatorKind::Optimized);
    for (int t = 0; t < 16; ++t) {
        ResourceId r = e.addResource("r" + std::to_string(t), 100.0);
        Work w;
        w.amount = 50.0 + t;
        w.path = {r};
        e.addTask(std::make_unique<LoopTask>(
            "t" + std::to_string(t), std::vector<Prim>{},
            std::vector<Prim>{w}, 20));
    }
    e.run();
    const Engine::Stats st = e.stats();
    EXPECT_GT(st.incrementalSolves, st.fullSolves);
    EXPECT_GT(st.calqueueOps, 0u);
}

// --- Subset solver: the algebraic core of the incremental path. -----

/** Connected components of flows under shared-resource adjacency. */
std::vector<int>
flowComponents(const std::vector<FairShareFlow> &flows, int nr)
{
    std::vector<int> comp(flows.size());
    std::iota(comp.begin(), comp.end(), 0);
    // Union via resource -> representative flow.
    std::vector<int> resRep(nr, -1);
    auto find = [&comp](int f) {
        while (comp[f] != f)
            f = comp[f] = comp[comp[f]];
        return f;
    };
    for (size_t f = 0; f < flows.size(); ++f) {
        for (ResourceId r : flows[f].path) {
            if (resRep[r] < 0) {
                resRep[r] = static_cast<int>(f);
            } else {
                const int a = find(resRep[r]);
                const int b = find(static_cast<int>(f));
                comp[a] = b;
            }
        }
    }
    for (size_t f = 0; f < flows.size(); ++f)
        comp[f] = find(static_cast<int>(f));
    return comp;
}

TEST(SubsetSolver, ComponentSolveMatchesFullReferenceBitForBit)
{
    Rng rng(0x5013e7ULL);
    FairShareScratch scratch;
    int componentsChecked = 0;
    for (int iter = 0; iter < 400; ++iter) {
        const int nr = 1 + static_cast<int>(rng.below(8));
        const int nf = 1 + static_cast<int>(rng.below(24));
        std::vector<double> caps;
        for (int r = 0; r < nr; ++r)
            caps.push_back(rng.uniform(0.5, 2000.0));
        std::vector<FairShareFlow> flows;
        std::vector<PathVec> paths;
        std::vector<double> rateCaps;
        for (int f = 0; f < nf; ++f) {
            FairShareFlow fl;
            const int plen = 1 + static_cast<int>(rng.below(3));
            for (int k = 0; k < plen; ++k) {
                auto r = static_cast<ResourceId>(rng.below(nr));
                bool dup = false;
                for (ResourceId e : fl.path)
                    dup = dup || e == r;
                if (!dup)
                    fl.path.push_back(r);
            }
            if (rng.below(3) == 0)
                fl.rateCap = rng.uniform(0.1, 500.0);
            paths.push_back(fl.path);
            rateCaps.push_back(fl.rateCap);
            flows.push_back(std::move(fl));
        }
        const std::vector<double> full =
            fairShareRatesReference(caps, flows);
        const std::vector<int> comp = flowComponents(flows, nr);
        // Solve each component through the subset entry point and
        // demand the full solve's exact bits.
        for (int f = 0; f < nf; ++f) {
            if (comp[f] != f)
                continue; // not a representative
            std::vector<int> members;
            std::vector<char> resIn(nr, 0);
            std::vector<ResourceId> resList;
            for (int g = 0; g < nf; ++g) {
                if (comp[g] != f)
                    continue;
                members.push_back(g);
                for (ResourceId r : flows[g].path) {
                    if (!resIn[r]) {
                        resIn[r] = 1;
                        resList.push_back(r);
                    }
                }
            }
            fairShareSolveSubset(caps, paths, rateCaps,
                                 members.data(), members.size(),
                                 resList.data(), resList.size(),
                                 scratch);
            for (size_t k = 0; k < members.size(); ++k) {
                ASSERT_EQ(bits(scratch.rates[k]),
                          bits(full[members[k]]))
                    << "iteration " << iter << " flow " << members[k];
            }
            ++componentsChecked;
        }
    }
    // The generator must actually have produced multi-component
    // scenarios for this test to mean anything.
    EXPECT_GT(componentsChecked, 400);
}

// --- The exact-rate audit gate must actually have teeth. ------------

TEST(EngineDiffDeathTest, ExactRateCheckPanicsOnUlpPerturbedRate)
{
    Auditor a;
    a.setExactRateCheck(true);
    AuditedFlow f;
    f.path = {0};
    f.remaining = 10.0;
    f.owner = 0;
    // Correct max-min rate is exactly 100.0; nudge one ulp.  The
    // epsilon-tolerance invariants all pass, so only the exact-rate
    // cross-check can catch it.
    f.rate = std::nextafter(100.0, 200.0);
    EXPECT_DEATH(a.onAllocation({100.0}, {f}, 0.0),
                 "exact-rate violation");
}

TEST(EngineDiffDeathTest, ExactRateCheckAcceptsOracleRates)
{
    Auditor a;
    a.setExactRateCheck(true);
    AuditedFlow f;
    f.path = {0};
    f.remaining = 10.0;
    f.owner = 0;
    f.rate = 100.0;
    a.onAllocation({100.0}, {f}, 0.0); // must not panic
    EXPECT_EQ(a.allocationsChecked(), 1u);
}

} // namespace
} // namespace mcscope
