/**
 * @file
 * Tests for the engine's timeline trace sink.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hh"
#include "sim/task.hh"

namespace mcscope {
namespace {

Work
work(double amount, std::vector<ResourceId> path, int tag = 0)
{
    Work w;
    w.amount = amount;
    w.path = std::move(path);
    w.tag = tag;
    return w;
}

TEST(Trace, EmitsBalancedFlowEventsInTimeOrder)
{
    Engine e;
    ResourceId r = e.addResource("r", 10.0);
    e.addTask(std::make_unique<SequenceTask>(
        "a", std::vector<Prim>{work(10.0, {r}, 7),
                               work(20.0, {r}, 8)}));
    e.addTask(std::make_unique<SequenceTask>(
        "b", std::vector<Prim>{work(10.0, {r}, 7)}));

    std::vector<TraceEvent> events;
    e.setTraceSink([&events](const TraceEvent &ev) {
        events.push_back(ev);
    });
    e.run();

    int starts = 0, ends = 0, finishes = 0;
    SimTime prev = 0.0;
    for (const TraceEvent &ev : events) {
        EXPECT_GE(ev.time, prev);
        prev = ev.time;
        switch (ev.kind) {
          case TraceEvent::Kind::FlowStart:
            ++starts;
            break;
          case TraceEvent::Kind::FlowEnd:
            ++ends;
            break;
          case TraceEvent::Kind::TaskFinish:
            ++finishes;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(starts, 3);
    EXPECT_EQ(ends, 3);
    EXPECT_EQ(finishes, 2);
}

TEST(Trace, CarriesTagsAndAmounts)
{
    Engine e;
    ResourceId r = e.addResource("r", 10.0);
    e.addTask(std::make_unique<SequenceTask>(
        "t", std::vector<Prim>{work(42.0, {r}, 5)}));
    std::vector<TraceEvent> events;
    e.setTraceSink([&events](const TraceEvent &ev) {
        events.push_back(ev);
    });
    e.run();
    ASSERT_GE(events.size(), 2u);
    EXPECT_EQ(events[0].kind, TraceEvent::Kind::FlowStart);
    EXPECT_EQ(events[0].tag, 5);
    EXPECT_DOUBLE_EQ(events[0].amount, 42.0);
    EXPECT_EQ(events[0].task, 0);
}

TEST(Trace, DelayEndReported)
{
    Engine e;
    e.addResource("r", 1.0);
    Delay d;
    d.seconds = 0.5;
    d.tag = 9;
    e.addTask(std::make_unique<SequenceTask>("t",
                                             std::vector<Prim>{d}));
    bool saw_delay = false;
    e.setTraceSink([&saw_delay](const TraceEvent &ev) {
        if (ev.kind == TraceEvent::Kind::DelayEnd) {
            saw_delay = true;
            EXPECT_DOUBLE_EQ(ev.time, 0.5);
            EXPECT_EQ(ev.tag, 9);
        }
    });
    e.run();
    EXPECT_TRUE(saw_delay);
}

TEST(Trace, KindNames)
{
    EXPECT_STREQ(traceEventKindName(TraceEvent::Kind::FlowStart),
                 "flow-start");
    EXPECT_STREQ(traceEventKindName(TraceEvent::Kind::TaskFinish),
                 "task-finish");
}

TEST(Trace, NullSinkIsFine)
{
    Engine e;
    ResourceId r = e.addResource("r", 1.0);
    e.addTask(std::make_unique<SequenceTask>(
        "t", std::vector<Prim>{work(1.0, {r})}));
    e.setTraceSink(nullptr);
    e.run();
    EXPECT_DOUBLE_EQ(e.makespan(), 1.0);
}

} // namespace
} // namespace mcscope
