/**
 * @file
 * Unit tests for the max-min fair (progressive filling) allocator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/fairshare.hh"

namespace mcscope {
namespace {

FairShareFlow
flow(std::vector<ResourceId> path, double cap = 0.0)
{
    FairShareFlow f;
    f.path = std::move(path);
    f.rateCap = cap;
    return f;
}

TEST(FairShare, SingleFlowGetsFullCapacity)
{
    auto rates = fairShareRates({100.0}, {flow({0})});
    ASSERT_EQ(rates.size(), 1u);
    EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(FairShare, TwoFlowsSplitEvenly)
{
    auto rates = fairShareRates({100.0}, {flow({0}), flow({0})});
    EXPECT_DOUBLE_EQ(rates[0], 50.0);
    EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(FairShare, CapLimitsFlowAndReleasesCapacity)
{
    // Flow 0 capped at 20; flow 1 takes the remaining 80.
    auto rates = fairShareRates({100.0}, {flow({0}, 20.0), flow({0})});
    EXPECT_DOUBLE_EQ(rates[0], 20.0);
    EXPECT_DOUBLE_EQ(rates[1], 80.0);
}

TEST(FairShare, CapAboveFairShareIsInert)
{
    auto rates = fairShareRates({100.0}, {flow({0}, 90.0), flow({0})});
    EXPECT_DOUBLE_EQ(rates[0], 50.0);
    EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(FairShare, PathMinimumGoverns)
{
    // Flow crosses both resources; the narrow one binds.
    auto rates = fairShareRates({100.0, 30.0}, {flow({0, 1})});
    EXPECT_DOUBLE_EQ(rates[0], 30.0);
}

TEST(FairShare, ClassicMaxMinExample)
{
    // Three flows: A on r0 only, B on r0+r1, C on r1 only.
    // r0 = 10, r1 = 4: B is squeezed to 2 by r1 (fair share with C),
    // then A gets the rest of r0 = 8.
    auto rates = fairShareRates(
        {10.0, 4.0}, {flow({0}), flow({0, 1}), flow({1})});
    EXPECT_DOUBLE_EQ(rates[1], 2.0);
    EXPECT_DOUBLE_EQ(rates[2], 2.0);
    EXPECT_DOUBLE_EQ(rates[0], 8.0);
}

TEST(FairShare, UnconstrainedFlowIsInfinite)
{
    auto rates = fairShareRates({10.0}, {flow({})});
    EXPECT_TRUE(std::isinf(rates[0]));
}

TEST(FairShare, EmptyPathWithCapUsesCap)
{
    auto rates = fairShareRates({10.0}, {flow({}, 3.0)});
    EXPECT_DOUBLE_EQ(rates[0], 3.0);
}

TEST(FairShare, NoFlows)
{
    auto rates = fairShareRates({10.0}, {});
    EXPECT_TRUE(rates.empty());
}

/**
 * Property sweep: random flow sets must satisfy (a) capacity
 * feasibility and (b) max-min optimality's local condition: every
 * uncapped flow is bottlenecked on some saturated resource where it
 * has a maximal rate.
 */
class FairShareProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(FairShareProperty, FeasibleAndMaxMin)
{
    uint64_t seed = static_cast<uint64_t>(GetParam());
    // Deterministic pseudo-random scenario from the seed.
    auto next = [&seed]() {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        return seed >> 33;
    };
    int nr = 1 + static_cast<int>(next() % 6);
    int nf = 1 + static_cast<int>(next() % 10);
    std::vector<double> caps;
    for (int r = 0; r < nr; ++r)
        caps.push_back(1.0 + static_cast<double>(next() % 1000));
    std::vector<FairShareFlow> flows;
    for (int f = 0; f < nf; ++f) {
        FairShareFlow fl;
        int plen = 1 + static_cast<int>(next() % nr);
        for (int k = 0; k < plen; ++k) {
            ResourceId r = static_cast<ResourceId>(next() % nr);
            bool dup = false;
            for (ResourceId e : fl.path)
                dup = dup || e == r;
            if (!dup)
                fl.path.push_back(r);
        }
        if (next() % 3 == 0)
            fl.rateCap = 1.0 + static_cast<double>(next() % 500);
        flows.push_back(fl);
    }

    auto rates = fairShareRates(caps, flows);
    ASSERT_EQ(rates.size(), flows.size());

    // (a) Feasibility: per-resource load within capacity.
    std::vector<double> load(nr, 0.0);
    for (size_t f = 0; f < flows.size(); ++f) {
        EXPECT_GT(rates[f], 0.0);
        for (ResourceId r : flows[f].path)
            load[r] += rates[f];
    }
    for (int r = 0; r < nr; ++r)
        EXPECT_LE(load[r], caps[r] * (1.0 + 1e-9));

    // (b) Every flow is either at its cap or crosses a saturated
    // resource where no co-flow has a smaller rate it could steal
    // from... weaker check: flow is at cap or some path resource is
    // saturated.
    for (size_t f = 0; f < flows.size(); ++f) {
        bool at_cap = flows[f].rateCap > 0.0 &&
                      rates[f] >= flows[f].rateCap * (1.0 - 1e-9);
        bool bottlenecked = false;
        for (ResourceId r : flows[f].path)
            bottlenecked =
                bottlenecked || load[r] >= caps[r] * (1.0 - 1e-9);
        EXPECT_TRUE(at_cap || bottlenecked)
            << "flow " << f << " is neither capped nor bottlenecked";
    }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, FairShareProperty,
                         ::testing::Range(1, 60));

} // namespace
} // namespace mcscope
