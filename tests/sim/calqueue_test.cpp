/**
 * @file
 * Unit tests for the calendar queue backing the engine's next-finish
 * lookup (sim/calqueue.hh), differential-tested against a naive
 * scan-everything oracle: random insert/remove/update churn, overdue
 * entries, bucket growth and width retuning, and the capacity-sum
 * contract the allocation guard relies on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sim/calqueue.hh"
#include "util/rng.hh"

namespace mcscope {
namespace {

/**
 * Oracle: the same slot -> time map held as a flat array, min found
 * by scanning.  Deliberately structure-free so any calendar-queue
 * bucketing bug diverges from it.
 */
class NaiveQueue
{
  public:
    void
    insert(int slot, double t)
    {
        if (static_cast<size_t>(slot) >= time_.size())
            time_.resize(slot + 1,
                         std::numeric_limits<double>::infinity());
        time_[slot] = t;
    }

    void
    remove(int slot)
    {
        time_[slot] = std::numeric_limits<double>::infinity();
    }

    bool
    contains(int slot) const
    {
        return static_cast<size_t>(slot) < time_.size() &&
               std::isfinite(time_[slot]);
    }

    double
    minTime() const
    {
        double best = std::numeric_limits<double>::infinity();
        for (double t : time_) {
            if (t < best)
                best = t;
        }
        return best;
    }

    size_t
    size() const
    {
        size_t n = 0;
        for (double t : time_) {
            if (std::isfinite(t))
                ++n;
        }
        return n;
    }

    /** First slot holding the minimum time, or -1 when empty. */
    int
    argmin() const
    {
        int best = -1;
        for (size_t s = 0; s < time_.size(); ++s) {
            if (std::isfinite(time_[s]) &&
                (best < 0 || time_[s] < time_[best]))
                best = static_cast<int>(s);
        }
        return best;
    }

  private:
    std::vector<double> time_;
};

TEST(CalendarQueue, EmptyQueueHasInfiniteMin)
{
    CalendarQueue q;
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(std::isinf(q.minTime()));
    EXPECT_FALSE(q.contains(0));
}

TEST(CalendarQueue, SingleEntryRoundTrip)
{
    CalendarQueue q;
    q.reserveSlots(4);
    q.insert(2, 1.5);
    EXPECT_TRUE(q.contains(2));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_DOUBLE_EQ(q.minTime(), 1.5);
    q.remove(2);
    EXPECT_FALSE(q.contains(2));
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(std::isinf(q.minTime()));
}

TEST(CalendarQueue, MinTracksOrderedInserts)
{
    CalendarQueue q;
    q.reserveSlots(8);
    q.insert(0, 5.0);
    q.insert(1, 3.0);
    q.insert(2, 4.0);
    EXPECT_DOUBLE_EQ(q.minTime(), 3.0);
    q.remove(1);
    EXPECT_DOUBLE_EQ(q.minTime(), 4.0);
    q.remove(2);
    EXPECT_DOUBLE_EQ(q.minTime(), 5.0);
}

TEST(CalendarQueue, UpdateMovesAnEntry)
{
    CalendarQueue q;
    q.reserveSlots(4);
    q.insert(0, 10.0);
    q.insert(1, 20.0);
    q.update(0, 30.0); // old min moves behind slot 1
    EXPECT_DOUBLE_EQ(q.minTime(), 20.0);
    q.update(1, 40.0);
    EXPECT_DOUBLE_EQ(q.minTime(), 30.0);
}

TEST(CalendarQueue, InsertBelowAdvancedMinIsFound)
{
    // The engine inserts "overdue" finish times when a rate increase
    // pulls a flow's completion before an already-consumed minTime()
    // horizon; the queue's monotone lower bound must back off.
    CalendarQueue q;
    q.reserveSlots(4);
    q.insert(0, 100.0);
    EXPECT_DOUBLE_EQ(q.minTime(), 100.0); // lastTime_ advances to 100
    q.insert(1, 7.0);                     // behind the advanced bound
    EXPECT_DOUBLE_EQ(q.minTime(), 7.0);
}

TEST(CalendarQueue, ManyEntriesForceGrowthAndStayConsistent)
{
    CalendarQueue q;
    NaiveQueue oracle;
    const int n = 2000; // far past the 16-bucket seed: several grows
    q.reserveSlots(n);
    Rng rng(0xca1ULL);
    for (int s = 0; s < n; ++s) {
        const double t = rng.uniform(0.0, 50.0);
        q.insert(s, t);
        oracle.insert(s, t);
    }
    EXPECT_EQ(q.size(), oracle.size());
    EXPECT_GT(q.stats().resizes, 0u);
    // Drain in min order; every min must match the oracle's.
    while (oracle.size() > 0) {
        const double want = oracle.minTime();
        ASSERT_DOUBLE_EQ(q.minTime(), want);
        const int victim = oracle.argmin();
        ASSERT_GE(victim, 0);
        ASSERT_TRUE(q.contains(victim));
        q.remove(victim);
        oracle.remove(victim);
    }
    EXPECT_TRUE(std::isinf(q.minTime()));
    EXPECT_EQ(q.size(), 0u);
}

/**
 * The main gate: a long random op stream (insert / remove / update /
 * minTime, with occasional time advances and overdue inserts) driven
 * through both the calendar queue and the naive oracle.  Every
 * minTime() and size() must agree, and membership must agree for
 * every slot after every operation batch.
 */
TEST(CalendarQueue, RandomChurnMatchesNaiveOracle)
{
    const int kSlots = 256;
    CalendarQueue q;
    NaiveQueue oracle;
    q.reserveSlots(kSlots);
    Rng rng(0xdeadf1ea5ULL);
    std::vector<double> slotTime(kSlots, 0.0);
    double now = 0.0;
    for (int op = 0; op < 20000; ++op) {
        const int slot = static_cast<int>(rng.below(kSlots));
        const uint64_t kind = rng.below(10);
        if (kind < 4) {
            // Insert or move: mostly ahead of now, occasionally
            // overdue (a rate jump pulled the finish backwards).
            double t = now + rng.uniform(0.0, 10.0);
            if (rng.below(8) == 0)
                t = now - rng.uniform(0.0, 2.0);
            if (q.contains(slot))
                q.update(slot, t);
            else
                q.insert(slot, t);
            oracle.insert(slot, t);
            slotTime[slot] = t;
        } else if (kind < 6) {
            if (q.contains(slot)) {
                q.remove(slot);
                oracle.remove(slot);
            }
        } else if (kind < 9) {
            ASSERT_EQ(q.size(), oracle.size()) << "op " << op;
            const double want = oracle.minTime();
            const double got = q.minTime();
            if (std::isinf(want))
                ASSERT_TRUE(std::isinf(got)) << "op " << op;
            else
                ASSERT_DOUBLE_EQ(got, want) << "op " << op;
            if (std::isfinite(want) && want > now)
                now = want; // advance the simulated clock
        } else {
            ASSERT_EQ(q.contains(slot), oracle.contains(slot))
                << "op " << op << " slot " << slot;
        }
    }
    // Final full-membership sweep.
    for (int s = 0; s < kSlots; ++s)
        EXPECT_EQ(q.contains(s), oracle.contains(s)) << "slot " << s;
}

TEST(CalendarQueue, DeterministicAcrossIdenticalRuns)
{
    // Two queues fed the identical op stream must agree on every
    // observable, including the op/resize counters the engine exports
    // into sweep telemetry.
    auto drive = [](CalendarQueue &q) {
        Rng rng(0x5eedULL);
        q.reserveSlots(128);
        for (int op = 0; op < 5000; ++op) {
            const int slot = static_cast<int>(rng.below(128));
            const double t = rng.uniform(0.0, 100.0);
            if (q.contains(slot))
                q.update(slot, t);
            else
                q.insert(slot, t);
            if (rng.below(4) == 0)
                q.minTime();
        }
    };
    CalendarQueue a, b;
    drive(a);
    drive(b);
    EXPECT_EQ(a.size(), b.size());
    EXPECT_DOUBLE_EQ(a.minTime(), b.minTime());
    EXPECT_EQ(a.stats().ops, b.stats().ops);
    EXPECT_EQ(a.stats().resizes, b.stats().resizes);
    EXPECT_EQ(a.bucketCount(), b.bucketCount());
    EXPECT_DOUBLE_EQ(a.bucketWidth(), b.bucketWidth());
}

TEST(CalendarQueue, CapacitySumIsMonotoneUnderChurn)
{
    // The engine's allocation guard treats capacitySum() as "did this
    // structure acquire memory": it must never decrease, and must be
    // stable across steady-state ops once warmed up.
    CalendarQueue q;
    q.reserveSlots(64);
    Rng rng(0xabcULL);
    size_t last = q.capacitySum();
    for (int op = 0; op < 4000; ++op) {
        const int slot = static_cast<int>(rng.below(64));
        const double t = rng.uniform(0.0, 30.0);
        if (q.contains(slot))
            q.update(slot, t);
        else
            q.insert(slot, t);
        const size_t cap = q.capacitySum();
        ASSERT_GE(cap, last) << "op " << op;
        last = cap;
    }
    // Warm steady state: one more full churn round must not grow.
    const size_t warmed = q.capacitySum();
    for (int op = 0; op < 4000; ++op) {
        const int slot = static_cast<int>(rng.below(64));
        q.update(slot, rng.uniform(30.0, 60.0));
    }
    EXPECT_EQ(q.capacitySum(), warmed);
}

TEST(CalendarQueue, ClusteredTimesRetuneWidth)
{
    // All entries land in one bucket epoch (pathological width), then
    // a full-revolution miss on lookup must trigger a direct scan and
    // a retune rather than an infinite walk.
    CalendarQueue q;
    q.reserveSlots(64);
    // Seed with a wide spread so the initial width is large...
    q.insert(0, 0.0);
    q.insert(1, 1.0e6);
    q.remove(0);
    q.remove(1);
    // ...then cluster everything microscopically around 500.0.
    for (int s = 0; s < 64; ++s)
        q.insert(s, 500.0 + 1e-7 * s);
    EXPECT_DOUBLE_EQ(q.minTime(), 500.0);
    EXPECT_EQ(q.size(), 64u);
    // Drain front-to-back; min must stay exact throughout.
    for (int s = 0; s < 64; ++s) {
        ASSERT_DOUBLE_EQ(q.minTime(), 500.0 + 1e-7 * s);
        q.remove(s);
    }
    EXPECT_TRUE(std::isinf(q.minTime()));
}

} // namespace
} // namespace mcscope
