/**
 * @file
 * Tests for the Chrome trace exporter, the utilization timeline, and
 * the engine counters: the trace must be well-formed JSON with every
 * "B" event closed by a matching "E" on the same track, and the
 * timeline buckets must integrate to exactly the endpoint
 * utilization statistics.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.hh"
#include "core/experiment.hh"
#include "kernels/stream.hh"
#include "machine/config.hh"
#include "machine/machine.hh"
#include "sim/engine.hh"
#include "sim/task.hh"
#include "sim/trace_export.hh"

namespace mcscope {
namespace {

/**
 * Minimal recursive-descent JSON syntax checker.  Accepts exactly
 * the RFC-8259 grammar (minus surrogate-pair checking); no values
 * are materialized.  Good enough to prove the exporter's output
 * parses, without dragging a JSON library into the test image.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control character
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digits())
            return false;
        if (peek() == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digits())
                return false;
        }
        return pos_ > start;
    }

    bool digits()
    {
        size_t start = pos_;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    const std::string &s_;
    size_t pos_ = 0;
};

/** Pull the value of an integer field like `"tid":12` out of a record. */
long
intField(const std::string &record, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    size_t at = record.find(needle);
    if (at == std::string::npos)
        return -1;
    return std::stol(record.substr(at + needle.size()));
}

/**
 * Check the B/E discipline: split the trace into records (the writer
 * emits one per line), and per track push on "B" and pop on "E".
 * Every track must end balanced.  Returns the total B count, -1 on a
 * violation.
 */
long
checkPairing(const std::string &json)
{
    std::map<long, long> open; // tid -> open B count
    long begins = 0;
    std::istringstream lines(json);
    std::string line;
    while (std::getline(lines, line)) {
        bool is_b = line.find("\"ph\":\"B\"") != std::string::npos;
        bool is_e = line.find("\"ph\":\"E\"") != std::string::npos;
        if (!is_b && !is_e)
            continue;
        long tid = intField(line, "tid");
        if (tid < 0)
            return -1;
        if (is_b) {
            ++open[tid];
            ++begins;
        } else if (--open[tid] < 0) {
            return -1; // E without a matching B on this track
        }
    }
    for (const auto &kv : open) {
        if (kv.second != 0)
            return -1;
    }
    return begins;
}

Work
work(double amount, std::vector<ResourceId> path, int tag = 0)
{
    Work w;
    w.amount = amount;
    w.path = std::move(path);
    w.tag = tag;
    return w;
}

TEST(TraceExport, JsonEscapeRules)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(TraceExport, HandBuiltEngineProducesValidPairedTrace)
{
    std::ostringstream oss;
    Engine e;
    ResourceId r = e.addResource("mem", 10.0);
    for (int t = 0; t < 2; ++t) {
        e.addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(t),
            std::vector<Prim>{work(20.0, {r}, 3), Delay{0.5, 0},
                              work(10.0, {r}, 4)}));
    }
    {
        ChromeTraceWriter w(oss);
        w.attach(e);
        e.run();
        w.finish();
        EXPECT_GT(w.recordsWritten(), 0u);
    }
    std::string json = oss.str();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    // 2 tasks x 2 work flows each.
    EXPECT_EQ(checkPairing(json), 4);
    // Flow metadata survived: tag and path reach the args block.
    EXPECT_NE(json.find("flow tag 3"), std::string::npos);
    EXPECT_NE(json.find("\"path\":\"mem\""), std::string::npos);
    // Delays and task completions show up as instants.
    EXPECT_NE(json.find("delay tag"), std::string::npos);
    EXPECT_NE(json.find("task finish"), std::string::npos);
}

TEST(TraceExport, FinishIsIdempotentAndDestructorSafe)
{
    std::ostringstream oss;
    Engine e;
    ResourceId r = e.addResource("mem", 10.0);
    e.addTask(std::make_unique<SequenceTask>(
        "t0", std::vector<Prim>{work(5.0, {r})}));
    {
        ChromeTraceWriter w(oss);
        w.attach(e);
        e.run();
        w.finish();
        w.finish(); // second call must not re-emit the footer
    }             // destructor runs finish() a third time
    std::string json = oss.str();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_EQ(json.find("]}"), json.rfind("]}"));
}

TEST(TraceExport, FullExperimentTraceIsValidJson)
{
    StreamWorkload stream(1u << 20, 4);
    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = table5Options()[0];
    cfg.ranks = 4;

    Machine sim(cfg.machine);
    std::ostringstream oss;
    ChromeTraceWriter w(oss);
    w.attach(sim.engine());
    DetailedResult res = runExperimentDetailedOn(sim, cfg, stream);
    w.finish();
    ASSERT_TRUE(res.run.valid);

    std::string json = oss.str();
    EXPECT_TRUE(JsonChecker(json).valid());
    EXPECT_GT(checkPairing(json), 0);
    // Per-resource counter tracks and track names made it out.
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(Timeline, BucketsIntegrateToEndpointUtilization)
{
    StreamWorkload stream(1u << 20, 4);
    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = table5Options()[0];
    cfg.ranks = 4;
    cfg.timelineBuckets = 16;

    Machine sim(cfg.machine);
    RunResult r = runExperimentOn(sim, cfg, stream);
    ASSERT_TRUE(r.valid);

    const Engine &e = sim.engine();
    ASSERT_TRUE(e.timelineEnabled());
    ASSERT_GT(e.timelineBucketCount(), 0);
    // The rebinning policy bounds the count at 2 x target.
    EXPECT_LE(e.timelineBucketCount(), 2 * cfg.timelineBuckets);
    // Buckets tile the run: the last bucket must reach the makespan.
    EXPECT_GE(e.timelineBucketCount() * e.timelineBucketWidth(),
              e.makespan());
    for (ResourceId res = 0; res < e.resourceCount(); ++res) {
        double sum = 0.0;
        for (int b = 0; b < e.timelineBucketCount(); ++b)
            sum += e.timelineBusyTime(res, b);
        EXPECT_NEAR(sum, e.resourceUtilization(res) * e.makespan(),
                    1e-9)
            << "resource " << e.resourceName(res);
    }
}

TEST(Timeline, GatherAndCsvRoundTrip)
{
    StreamWorkload stream(1u << 20, 2);
    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = table5Options()[0];
    cfg.ranks = 2;
    cfg.timelineBuckets = 8;
    Machine sim(cfg.machine);
    DetailedResult res = runExperimentDetailedOn(sim, cfg, stream);
    ASSERT_TRUE(res.run.valid);
    ASSERT_TRUE(res.timeline.enabled());
    EXPECT_EQ(res.timeline.names.size(),
              static_cast<size_t>(sim.engine().resourceCount()));

    std::ostringstream oss;
    writeTimelineCsv(oss, res.timeline);
    std::istringstream lines(oss.str());
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header.rfind("bucket_start,bucket_end,", 0), 0u);
    int rows = 0;
    for (std::string line; std::getline(lines, line);)
        ++rows;
    EXPECT_EQ(rows, res.timeline.buckets());
}

TEST(EngineStats, CountersTrackTheRun)
{
    Engine e;
    ResourceId r = e.addResource("mem", 10.0);
    for (int t = 0; t < 3; ++t) {
        e.addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(t),
            std::vector<Prim>{work(10.0, {r}), Delay{0.1, 0},
                              work(5.0, {r})}));
    }
    e.run();
    Engine::Stats s = e.stats();
    EXPECT_EQ(s.events, e.eventCount());
    EXPECT_GT(s.events, 0u);
    EXPECT_GT(s.allocatorReruns, 0u);
    EXPECT_GT(s.timeSteps, 0u);
    EXPECT_EQ(s.peakActiveFlows, 3);
}

TEST(Timeline, MustBeEnabledBeforeRun)
{
    Engine e;
    ResourceId r = e.addResource("mem", 10.0);
    e.addTask(std::make_unique<SequenceTask>(
        "t0", std::vector<Prim>{work(5.0, {r})}));
    e.run();
    EXPECT_DEATH(e.enableUtilizationTimeline(4), "before run");
}

} // namespace
} // namespace mcscope
