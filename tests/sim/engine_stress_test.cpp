/**
 * @file
 * Stress and property tests for the engine: randomized task graphs
 * must complete without deadlock, conserve the units they demand,
 * and produce bit-identical results on replay.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/engine.hh"
#include "sim/task.hh"
#include "util/rng.hh"

namespace mcscope {
namespace {

struct Scenario
{
    int resources = 0;
    int tasks = 0;
    double total_demand = 0.0;
    std::vector<std::vector<Prim>> programs;
};

/**
 * Build a random but deadlock-free scenario: per-task private work
 * and delays, pairwise rendezvous between adjacent task pairs (both
 * sides always posted), and periodic full barriers.
 */
Scenario
buildScenario(uint64_t seed)
{
    Rng rng(seed);
    Scenario sc;
    sc.resources = 2 + static_cast<int>(rng.below(6));
    sc.tasks = 2 + static_cast<int>(rng.below(6));
    if (sc.tasks % 2)
        ++sc.tasks; // pair tasks up for rendezvous
    sc.programs.resize(sc.tasks);

    int rounds = 3 + static_cast<int>(rng.below(5));
    for (int round = 0; round < rounds; ++round) {
        for (int t = 0; t < sc.tasks; ++t) {
            auto &prog = sc.programs[t];
            // Private work.
            Work w;
            w.amount = 1.0 + rng.uniform() * 1000.0;
            w.path = {static_cast<ResourceId>(
                rng.below(sc.resources))};
            if (rng.below(3) == 0)
                w.rateCap = 10.0 + rng.uniform() * 100.0;
            sc.total_demand += w.amount;
            prog.push_back(w);

            if (rng.below(2) == 0) {
                Delay d;
                d.seconds = rng.uniform() * 0.01;
                prog.push_back(d);
            }
        }
        // Pairwise rendezvous (t, t+1).
        for (int t = 0; t < sc.tasks; t += 2) {
            uint64_t key =
                0x1000ULL + static_cast<uint64_t>(round) * 64 + t;
            Rendezvous a;
            a.key = key;
            a.carrier = true;
            a.transfer.amount = 1.0 + rng.uniform() * 500.0;
            a.transfer.path = {static_cast<ResourceId>(
                rng.below(sc.resources))};
            sc.total_demand += a.transfer.amount;
            Rendezvous b;
            b.key = key;
            sc.programs[t].push_back(a);
            sc.programs[t + 1].push_back(b);
        }
        // Periodic barrier.
        if (round % 2 == 0) {
            SyncAll s;
            s.key = 0x9000ULL + round;
            s.expected = sc.tasks;
            for (auto &prog : sc.programs)
                prog.push_back(s);
        }
    }
    return sc;
}

SimTime
runScenario(const Scenario &sc, double *moved = nullptr)
{
    Engine e;
    for (int r = 0; r < sc.resources; ++r)
        e.addResource("r" + std::to_string(r), 100.0);
    for (int t = 0; t < sc.tasks; ++t) {
        e.addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(t), sc.programs[t]));
    }
    e.run();
    if (moved) {
        *moved = 0.0;
        for (int r = 0; r < sc.resources; ++r)
            *moved += e.resourceUnitsMoved(r);
    }
    return e.makespan();
}

class EngineStress : public ::testing::TestWithParam<int>
{
};

TEST_P(EngineStress, CompletesAndConservesUnits)
{
    Scenario sc = buildScenario(static_cast<uint64_t>(GetParam()));
    double moved = 0.0;
    SimTime t = runScenario(sc, &moved);
    EXPECT_GT(t, 0.0);
    EXPECT_TRUE(std::isfinite(t));
    // Every flow crosses exactly one resource in this scenario, so
    // units moved must equal units demanded.
    EXPECT_NEAR(moved, sc.total_demand, 1e-6 * sc.total_demand);
}

TEST_P(EngineStress, DeterministicReplay)
{
    Scenario sc = buildScenario(static_cast<uint64_t>(GetParam()));
    SimTime t1 = runScenario(sc);
    SimTime t2 = runScenario(sc);
    EXPECT_DOUBLE_EQ(t1, t2);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, EngineStress,
                         ::testing::Range(1, 40));

TEST(EngineStress, ManyTasksOneResource)
{
    Engine e;
    ResourceId r = e.addResource("r", 1000.0);
    const int n = 48;
    for (int t = 0; t < n; ++t) {
        Work w;
        w.amount = 1000.0;
        w.path = {r};
        e.addTask(std::make_unique<LoopTask>(
            "t" + std::to_string(t), std::vector<Prim>{},
            std::vector<Prim>{w}, 10));
    }
    e.run();
    // n tasks x 10 iterations x 1000 units over 1000 units/s.
    EXPECT_NEAR(e.makespan(), n * 10.0, 1e-6 * n * 10.0);
    EXPECT_NEAR(e.resourceUtilization(r), 1.0, 1e-9);
}

TEST(EngineStress, LongDependencyChain)
{
    // A chain of rendezvous passes a baton through 16 tasks.
    Engine e;
    ResourceId r = e.addResource("r", 100.0);
    const int n = 16;
    for (int t = 0; t < n; ++t) {
        std::vector<Prim> prog;
        if (t > 0) {
            Rendezvous recv;
            recv.key = 100 + t;
            prog.push_back(recv);
        }
        Work w;
        w.amount = 100.0;
        w.path = {r};
        prog.push_back(w);
        if (t + 1 < n) {
            Rendezvous send;
            send.key = 100 + t + 1;
            send.carrier = true;
            prog.push_back(send);
        }
        e.addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(t), std::move(prog)));
    }
    e.run();
    // Strictly serialized: n seconds.
    EXPECT_NEAR(e.makespan(), static_cast<double>(n), 1e-9);
}

} // namespace
} // namespace mcscope
