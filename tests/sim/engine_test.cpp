/**
 * @file
 * Unit tests for the flow-level discrete-event engine: timing of
 * works and delays, fair sharing over time, rendezvous and barrier
 * semantics, tagged time attribution, and resource statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sim/audit.hh"
#include "sim/engine.hh"
#include "sim/task.hh"

namespace mcscope {
namespace {

Work
work(double amount, std::vector<ResourceId> path, double cap = 0.0,
     int tag = 0)
{
    Work w;
    w.amount = amount;
    w.path = std::move(path);
    w.rateCap = cap;
    w.tag = tag;
    return w;
}

TEST(Engine, SingleWorkTiming)
{
    Engine e;
    ResourceId r = e.addResource("r", 100.0);
    e.addTask(std::make_unique<SequenceTask>(
        "t", std::vector<Prim>{work(250.0, {r})}));
    e.run();
    EXPECT_DOUBLE_EQ(e.makespan(), 2.5);
    EXPECT_DOUBLE_EQ(e.resourceUnitsMoved(r), 250.0);
    EXPECT_NEAR(e.resourceUtilization(r), 1.0, 1e-9);
}

TEST(Engine, DelayTiming)
{
    Engine e;
    e.addResource("r", 1.0);
    Delay d;
    d.seconds = 1.5;
    e.addTask(std::make_unique<SequenceTask>("t",
                                             std::vector<Prim>{d}));
    e.run();
    EXPECT_DOUBLE_EQ(e.makespan(), 1.5);
}

TEST(Engine, TwoTasksShareResource)
{
    Engine e;
    ResourceId r = e.addResource("r", 100.0);
    for (int i = 0; i < 2; ++i) {
        e.addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(i),
            std::vector<Prim>{work(100.0, {r})}));
    }
    e.run();
    // Each runs at 50 units/s concurrently: both finish at t=2.
    EXPECT_DOUBLE_EQ(e.makespan(), 2.0);
}

TEST(Engine, StaggeredCompletionReallocates)
{
    // Task A moves 100, task B moves 300 on a 100-cap resource.
    // Phase 1: both at 50 until A finishes at t=2 (A:100, B:100).
    // Phase 2: B alone at 100, remaining 200 -> 2 more seconds.
    Engine e;
    ResourceId r = e.addResource("r", 100.0);
    int a = e.addTask(std::make_unique<SequenceTask>(
        "a", std::vector<Prim>{work(100.0, {r})}));
    int b = e.addTask(std::make_unique<SequenceTask>(
        "b", std::vector<Prim>{work(300.0, {r})}));
    e.run();
    EXPECT_DOUBLE_EQ(e.taskFinishTime(a), 2.0);
    EXPECT_DOUBLE_EQ(e.taskFinishTime(b), 4.0);
}

TEST(Engine, RateCapHonored)
{
    Engine e;
    ResourceId r = e.addResource("r", 100.0);
    e.addTask(std::make_unique<SequenceTask>(
        "t", std::vector<Prim>{work(10.0, {r}, 5.0)}));
    e.run();
    EXPECT_DOUBLE_EQ(e.makespan(), 2.0);
}

TEST(Engine, RendezvousTransfersAndReleasesBoth)
{
    Engine e;
    ResourceId r = e.addResource("r", 10.0);

    Rendezvous carrier;
    carrier.key = 42;
    carrier.carrier = true;
    carrier.transfer = work(20.0, {r});

    Rendezvous other;
    other.key = 42;

    Delay head;
    head.seconds = 1.0;

    int a = e.addTask(std::make_unique<SequenceTask>(
        "a", std::vector<Prim>{carrier}));
    int b = e.addTask(std::make_unique<SequenceTask>(
        "b", std::vector<Prim>{head, other}));
    e.run();
    // b arrives at t=1, transfer takes 2 -> both finish at 3.
    EXPECT_DOUBLE_EQ(e.taskFinishTime(a), 3.0);
    EXPECT_DOUBLE_EQ(e.taskFinishTime(b), 3.0);
}

TEST(Engine, ZeroByteRendezvousIsInstant)
{
    Engine e;
    e.addResource("r", 1.0);
    Rendezvous carrier;
    carrier.key = 7;
    carrier.carrier = true; // zero-amount transfer
    Rendezvous other;
    other.key = 7;
    int a = e.addTask(std::make_unique<SequenceTask>(
        "a", std::vector<Prim>{carrier}));
    int b = e.addTask(std::make_unique<SequenceTask>(
        "b", std::vector<Prim>{other}));
    e.run();
    EXPECT_DOUBLE_EQ(e.taskFinishTime(a), 0.0);
    EXPECT_DOUBLE_EQ(e.taskFinishTime(b), 0.0);
}

TEST(Engine, BarrierAlignsTasks)
{
    Engine e;
    ResourceId r = e.addResource("r", 10.0);
    SyncAll s;
    s.key = 99;
    s.expected = 3;
    for (int i = 0; i < 3; ++i) {
        Delay d;
        d.seconds = static_cast<double>(i); // staggered arrivals
        e.addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(i),
            std::vector<Prim>{d, s, work(10.0, {r})}));
    }
    e.run();
    // All leave the barrier at t=2; three flows share cap 10 ->
    // 10 units each at 10/3 -> 3 seconds -> makespan 5.
    EXPECT_NEAR(e.makespan(), 5.0, 1e-9);
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(e.taskFinishTime(i), 5.0, 1e-9);
}

TEST(Engine, TaggedTimeAttribution)
{
    Engine e;
    ResourceId r = e.addResource("r", 10.0);
    int t = e.addTask(std::make_unique<SequenceTask>(
        "t", std::vector<Prim>{work(10.0, {r}, 0.0, /*tag=*/5),
                               work(20.0, {r}, 0.0, /*tag=*/6)}));
    e.run();
    EXPECT_NEAR(e.taggedTime(t, 5), 1.0, 1e-9);
    EXPECT_NEAR(e.taggedTime(t, 6), 2.0, 1e-9);
    EXPECT_NEAR(e.maxTaggedTime(6), 2.0, 1e-9);
}

TEST(Engine, LoopTaskRepeatsBody)
{
    Engine e;
    ResourceId r = e.addResource("r", 10.0);
    e.addTask(std::make_unique<LoopTask>(
        "loop", std::vector<Prim>{},
        std::vector<Prim>{work(10.0, {r})}, 4));
    e.run();
    EXPECT_NEAR(e.makespan(), 4.0, 1e-9);
}

TEST(Engine, LoopTaskRendezvousKeysRewrittenPerIteration)
{
    // Two loop tasks ping-pong for 3 iterations; per-iteration key
    // rewriting must keep them matched (a stale key would deadlock or
    // mis-match, and the makespan would be wrong).
    Engine e;
    ResourceId r = e.addResource("r", 10.0);

    Rendezvous carrier;
    carrier.key = 1;
    carrier.carrier = true;
    carrier.transfer = work(10.0, {r});
    Rendezvous other;
    other.key = 1;

    e.addTask(std::make_unique<LoopTask>(
        "a", std::vector<Prim>{}, std::vector<Prim>{carrier}, 3));
    e.addTask(std::make_unique<LoopTask>(
        "b", std::vector<Prim>{}, std::vector<Prim>{other}, 3));
    e.run();
    EXPECT_NEAR(e.makespan(), 3.0, 1e-9);
}

TEST(Engine, GeneratorTaskRunsUntilNullopt)
{
    Engine e;
    ResourceId r = e.addResource("r", 1.0);
    e.addTask(std::make_unique<GeneratorTask>(
        "gen", [r](uint64_t step) -> std::optional<Prim> {
            if (step >= 3)
                return std::nullopt;
            return work(1.0, {r});
        }));
    e.run();
    EXPECT_NEAR(e.makespan(), 3.0, 1e-9);
}

TEST(Engine, InstantaneousPrimsAreSkipped)
{
    Engine e;
    e.addResource("r", 1.0);
    Delay zero;
    zero.seconds = 0.0;
    e.addTask(std::make_unique<SequenceTask>(
        "t", std::vector<Prim>{zero, work(0.0, {0}), work(1.0, {})}));
    e.run();
    EXPECT_DOUBLE_EQ(e.makespan(), 0.0);
}

TEST(Engine, CoincidentDelayExpiriesNeverStepTimeBackwards)
{
    // Many delays expiring at the same instant: the dt for the later
    // pops is delays_.begin()->first - now_, which float round-off
    // can push infinitesimally negative.  With the auditor's
    // monotonicity check armed, any backwards step panics.
    Engine e;
    e.setAuditor(std::make_unique<Auditor>());
    e.addResource("r", 1.0);
    // Accumulate to the same expiry along different summation orders
    // so the expiry times are equal-or-ulp-apart, not identical by
    // construction.
    const double step = 0.1; // not exactly representable in binary
    for (int t = 0; t < 8; ++t) {
        std::vector<Prim> prims;
        for (int k = 0; k < t + 1; ++k) {
            Delay d;
            d.seconds = step * 7.0 / (t + 1);
            prims.push_back(d);
        }
        e.addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(t), std::move(prims)));
    }
    e.run();
    EXPECT_NEAR(e.makespan(), 0.7, 1e-9);
}

TEST(Engine, CoincidentDelaysInterleavedWithFlows)
{
    Engine e;
    e.setAuditor(std::make_unique<Auditor>());
    ResourceId r = e.addResource("r", 10.0);
    for (int t = 0; t < 4; ++t) {
        Delay d;
        d.seconds = 0.5;
        e.addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(t),
            std::vector<Prim>{d, work(5.0, {r}), d}));
    }
    e.run();
    // 0.5 (delay) + 4 tasks sharing 10 units/s for 5 units each
    // (2.0 s) + 0.5 (delay).
    EXPECT_NEAR(e.makespan(), 3.0, 1e-9);
}

TEST(Engine, ZeroMakespanUtilizationIsZero)
{
    // A workload that completes instantaneously (zero-amount work,
    // zero delays) must report utilization 0, not divide by zero.
    Engine e;
    ResourceId r = e.addResource("r", 100.0);
    Delay zero;
    zero.seconds = 0.0;
    e.addTask(std::make_unique<SequenceTask>(
        "t", std::vector<Prim>{zero, work(0.0, {r})}));
    e.run();
    EXPECT_DOUBLE_EQ(e.makespan(), 0.0);
    double u = e.resourceUtilization(r);
    EXPECT_FALSE(std::isnan(u));
    EXPECT_DOUBLE_EQ(u, 0.0);
}

TEST(Engine, ReferenceAllocatorProducesIdenticalTimes)
{
    auto build = [](Engine &e) {
        ResourceId r0 = e.addResource("r0", 10.0);
        ResourceId r1 = e.addResource("r1", 7.0);
        for (int t = 0; t < 4; ++t) {
            e.addTask(std::make_unique<SequenceTask>(
                "t" + std::to_string(t),
                std::vector<Prim>{
                    work(5.0, {r0}),
                    work(3.0, {r0, r1}, t % 2 == 0 ? 2.0 : 0.0)}));
        }
    };
    Engine opt;
    build(opt);
    opt.run();
    Engine ref;
    ref.setAllocator(Engine::AllocatorKind::Reference);
    // The Reference oracle allocates per rerun by design; don't let
    // the Debug alloc guard abort this intentional A/B run.
    ref.setAllocGuardEnforced(false);
    build(ref);
    ref.run();
    EXPECT_EQ(opt.makespan(), ref.makespan());
    for (int t = 0; t < opt.taskCount(); ++t)
        EXPECT_EQ(opt.taskFinishTime(t), ref.taskFinishTime(t));
}

TEST(EngineDeath, DeadlockedRendezvousPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_DEATH(
        {
            Engine e;
            e.addResource("r", 1.0);
            Rendezvous lonely;
            lonely.key = 1;
            lonely.carrier = true;
            lonely.transfer = work(1.0, {0});
            e.addTask(std::make_unique<SequenceTask>(
                "t", std::vector<Prim>{lonely}));
            e.run();
        },
        "deadlock");
}

} // namespace
} // namespace mcscope
