/**
 * @file
 * Tests for the simulation invariant auditor.
 *
 * Two layers: negative tests drive the auditor directly with
 * deliberately broken allocations/events and assert each invariant
 * class panics loudly (death tests), and positive tests run real
 * engine workloads under audit and check they pass, produce
 * deterministic digests, and count real work.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/audit.hh"
#include "sim/engine.hh"
#include "sim/task.hh"

namespace mcscope {
namespace {

Work
work(double amount, std::vector<ResourceId> path, double cap = 0.0,
     int tag = 0)
{
    Work w;
    w.amount = amount;
    w.path = std::move(path);
    w.rateCap = cap;
    w.tag = tag;
    return w;
}

AuditedFlow
flow(double rate, std::vector<ResourceId> path, double cap = 0.0)
{
    AuditedFlow f;
    f.rate = rate;
    f.path = std::move(path);
    f.rateCap = cap;
    f.remaining = 1.0;
    f.owner = 0;
    return f;
}

TraceEvent
event(TraceEvent::Kind kind, SimTime time, int task, double amount = 0.0)
{
    TraceEvent ev;
    ev.kind = kind;
    ev.time = time;
    ev.task = task;
    ev.amount = amount;
    return ev;
}

// --- Negative tests: every invariant class must be enforced. --------

using AuditDeath = ::testing::Test;

TEST(AuditDeath, OversubscribedResourcePanics)
{
    // Two flows at 70 on a capacity-100 resource: conservation broken.
    Auditor a;
    EXPECT_DEATH(a.onAllocation({100.0},
                                {flow(70.0, {0}), flow(70.0, {0})}, 0.0),
                 "conservation violation");
}

TEST(AuditDeath, StarvedFlowPanics)
{
    Auditor a;
    EXPECT_DEATH(a.onAllocation({100.0},
                                {flow(0.0, {0}), flow(50.0, {0})}, 1.0),
                 "starvation");
}

TEST(AuditDeath, CapViolationPanics)
{
    Auditor a;
    EXPECT_DEATH(a.onAllocation({100.0}, {flow(30.0, {0}, 10.0)}, 0.0),
                 "cap violation");
}

TEST(AuditDeath, NonMaxMinAllocationPanics)
{
    // One uncapped flow at 40 on a capacity-100 resource: its rate
    // could be raised without hurting anyone, so the allocation is
    // not max-min fair.
    Auditor a;
    EXPECT_DEATH(a.onAllocation({100.0}, {flow(40.0, {0})}, 0.0),
                 "max-min violation");
}

TEST(AuditDeath, UnequalSharesOnSaturatedResourcePanics)
{
    // Saturated resource, but the uncapped flows have unequal rates:
    // the 25-rate flow is not maximal anywhere, so not max-min fair.
    Auditor a;
    EXPECT_DEATH(a.onAllocation({100.0},
                                {flow(75.0, {0}), flow(25.0, {0})}, 0.0),
                 "max-min violation");
}

TEST(AuditDeath, UnknownResourcePanics)
{
    Auditor a;
    EXPECT_DEATH(a.onAllocation({100.0}, {flow(10.0, {3})}, 0.0),
                 "unknown resource");
}

TEST(AuditDeath, NonMonotoneTimeAdvancePanics)
{
    Auditor a;
    a.onTimeAdvance(0.0, 5.0);
    EXPECT_DEATH(a.onTimeAdvance(5.0, 3.0), "time ran backwards");
}

TEST(AuditDeath, NonMonotoneTraceTimelinePanics)
{
    Auditor a;
    a.onTraceEvent(event(TraceEvent::Kind::FlowStart, 5.0, 0, 1.0));
    EXPECT_DEATH(
        a.onTraceEvent(event(TraceEvent::Kind::FlowEnd, 4.0, 0, 1.0)),
        "timeline ran backwards");
}

TEST(AuditDeath, UnpairedFlowEndPanics)
{
    Auditor a;
    EXPECT_DEATH(
        a.onTraceEvent(event(TraceEvent::Kind::FlowEnd, 1.0, 0, 5.0)),
        "unpaired flow-end");
}

TEST(AuditDeath, FlowLeftOpenAtRunEndPanics)
{
    Auditor a;
    a.onTraceEvent(event(TraceEvent::Kind::FlowStart, 1.0, 0, 5.0));
    EXPECT_DEATH(a.onRunEnd(2.0), "unpaired flow-start");
}

// --- Valid allocations the auditor must accept. ---------------------

TEST(Audit, AcceptsFairSaturatedAllocation)
{
    Auditor a;
    a.onAllocation({100.0}, {flow(50.0, {0}), flow(50.0, {0})}, 0.0);
    EXPECT_EQ(a.allocationsChecked(), 1u);
}

TEST(Audit, AcceptsCapBoundFlowBelowSaturation)
{
    // The capped flow sits at its ceiling; the other flow soaks up the
    // rest of the resource, so both are properly bottlenecked.
    Auditor a;
    a.onAllocation({100.0}, {flow(10.0, {0}, 10.0), flow(90.0, {0})},
                   0.0);
    EXPECT_EQ(a.allocationsChecked(), 1u);
}

TEST(Audit, AcceptsUnequalRatesWhenSlowerFlowIsCapBound)
{
    Auditor a;
    a.onAllocation({100.0},
                   {flow(25.0, {0}, 25.0), flow(75.0, {0})}, 0.0);
    EXPECT_EQ(a.allocationsChecked(), 1u);
}

TEST(Audit, AcceptsMultiResourcePaths)
{
    // Flow 0 crosses both resources and is bottlenecked on resource 1
    // together with flow 1; resource 0 stays unsaturated.
    Auditor a;
    a.onAllocation({200.0, 100.0},
                   {flow(50.0, {0, 1}), flow(50.0, {1})}, 0.0);
    EXPECT_EQ(a.allocationsChecked(), 1u);
}

TEST(Audit, PairsFlowsAndDigestsDeterministically)
{
    auto feed = [](Auditor &a) {
        a.onTraceEvent(event(TraceEvent::Kind::FlowStart, 0.0, 0, 7.0));
        a.onTraceEvent(event(TraceEvent::Kind::FlowStart, 0.0, 1, 7.0));
        a.onTraceEvent(event(TraceEvent::Kind::FlowEnd, 2.0, 0, 7.0));
        a.onTraceEvent(event(TraceEvent::Kind::FlowEnd, 2.0, 1, 7.0));
        a.onTraceEvent(event(TraceEvent::Kind::TaskFinish, 2.0, 0));
        a.onRunEnd(2.0);
    };
    Auditor a1, a2;
    feed(a1);
    feed(a2);
    EXPECT_EQ(a1.openFlowCount(), 0u);
    EXPECT_EQ(a1.eventsObserved(), 5u);
    EXPECT_EQ(a1.digest(), a2.digest());

    // A reordered stream must change the digest.
    Auditor a3;
    a3.onTraceEvent(event(TraceEvent::Kind::FlowStart, 0.0, 1, 7.0));
    a3.onTraceEvent(event(TraceEvent::Kind::FlowStart, 0.0, 0, 7.0));
    a3.onTraceEvent(event(TraceEvent::Kind::FlowEnd, 2.0, 0, 7.0));
    a3.onTraceEvent(event(TraceEvent::Kind::FlowEnd, 2.0, 1, 7.0));
    a3.onTraceEvent(event(TraceEvent::Kind::TaskFinish, 2.0, 0));
    a3.onRunEnd(2.0);
    EXPECT_NE(a1.digest(), a3.digest());
}

// --- Engine integration: audited runs of real task graphs. ----------

/** Build a small contended engine program and run it audited. */
uint64_t
runAuditedEngine()
{
    Engine e;
    e.setAuditor(std::make_unique<Auditor>());
    ResourceId r0 = e.addResource("mem0", 100.0);
    ResourceId r1 = e.addResource("link0", 50.0);
    for (int t = 0; t < 4; ++t) {
        std::vector<Prim> prog;
        prog.push_back(work(200.0, {r0}, t == 0 ? 10.0 : 0.0, 1));
        Delay d;
        d.seconds = 0.01;
        prog.push_back(d);
        prog.push_back(work(80.0, {r0, r1}, 0.0, 2));
        SyncAll s;
        s.key = 42;
        s.expected = 4;
        prog.push_back(s);
        e.addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(t), std::move(prog)));
    }
    e.run();
    EXPECT_NE(e.auditor(), nullptr);
    EXPECT_GT(e.auditor()->allocationsChecked(), 0u);
    EXPECT_GT(e.auditor()->eventsObserved(), 0u);
    EXPECT_EQ(e.auditor()->openFlowCount(), 0u);
    return e.auditor()->digest();
}

TEST(Audit, AuditedEngineRunPassesAndReplaysIdentically)
{
    uint64_t d1 = runAuditedEngine();
    uint64_t d2 = runAuditedEngine();
    EXPECT_EQ(d1, d2);
}

TEST(Audit, RendezvousTransfersAuditCleanly)
{
    Engine e;
    e.setAuditor(std::make_unique<Auditor>());
    ResourceId r = e.addResource("buf", 64.0);
    std::vector<Prim> sender, receiver;
    Rendezvous a;
    a.key = 7;
    a.carrier = true;
    a.transfer = work(128.0, {r});
    sender.push_back(a);
    Rendezvous b;
    b.key = 7;
    receiver.push_back(b);
    e.addTask(std::make_unique<SequenceTask>("send", std::move(sender)));
    e.addTask(std::make_unique<SequenceTask>("recv", std::move(receiver)));
    e.run();
    EXPECT_DOUBLE_EQ(e.makespan(), 2.0);
    EXPECT_EQ(e.auditor()->openFlowCount(), 0u);
}

TEST(Audit, PeakConcurrencyCountsSimultaneousFlows)
{
    Engine e;
    ResourceId r = e.addResource("mem", 100.0);
    ResourceId lone = e.addResource("idle", 100.0);
    // Three tasks contend on r; the second work of task 0 runs alone.
    for (int t = 0; t < 3; ++t) {
        std::vector<Prim> prog;
        prog.push_back(work(100.0, {r}));
        if (t == 0)
            prog.push_back(work(500.0, {r}));
        e.addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(t), std::move(prog)));
    }
    e.run();
    EXPECT_EQ(e.resourcePeakConcurrency(r), 3);
    EXPECT_EQ(e.resourcePeakConcurrency(lone), 0);
    EXPECT_GT(e.resourceUnitsMoved(r), 0.0);
}

} // namespace
} // namespace mcscope
