/**
 * @file
 * Property test: every registered workload runs cleanly under the
 * simulation invariant auditor, and audited replays are
 * digest-identical (determinism).  This is the machine-checked
 * backstop behind every paper figure: if an allocator or event-loop
 * bug breaks fairness, conservation, or pairing anywhere in the
 * workload space, one of these runs panics.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hh"
#include "core/registry.hh"
#include "machine/config.hh"
#include "machine/machine.hh"

namespace mcscope {
namespace {

class AuditedWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AuditedWorkloads, PassesAuditAndReplaysDeterministically)
{
    auto workload = makeWorkload(GetParam());
    ASSERT_NE(workload, nullptr);

    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = table5Options().front(); // Default
    cfg.ranks = 4;
    cfg.audit = true;

    RunResult first = runExperiment(cfg, *workload);
    ASSERT_TRUE(first.valid);
    EXPECT_TRUE(first.audited);
    EXPECT_GT(first.auditChecks, 0u);
    EXPECT_GT(first.seconds, 0.0);

    RunResult replay = runExperiment(cfg, *workload);
    ASSERT_TRUE(replay.valid);
    EXPECT_EQ(first.auditDigest, replay.auditDigest)
        << "non-deterministic audited replay for " << GetParam();
}

TEST_P(AuditedWorkloads, PassesAuditUnderLocalAllocOnLongs)
{
    auto workload = makeWorkload(GetParam());
    ASSERT_NE(workload, nullptr);

    ExperimentConfig cfg;
    cfg.machine = longsConfig();
    cfg.option = table5Options()[1]; // One MPI + Local Alloc
    cfg.ranks = 8;
    cfg.audit = true;

    RunResult res = runExperiment(cfg, *workload);
    ASSERT_TRUE(res.valid);
    EXPECT_TRUE(res.audited);
    EXPECT_GT(res.auditChecks, 0u);
}

TEST_P(AuditedWorkloads, OptimizedHotPathKeepsDigestBitForBit)
{
    // The zero-allocation allocator + incremental min-tracking must
    // be invisible to results: an audited run with the optimized hot
    // path and one with the retained reference allocator produce the
    // same event stream, hence the same order-sensitive digest.
    auto workload = makeWorkload(GetParam());
    ASSERT_NE(workload, nullptr);

    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = table5Options().front(); // Default
    cfg.ranks = 4;
    cfg.audit = true;

    Machine optimized(cfg.machine);
    RunResult opt = runExperimentOn(optimized, cfg, *workload);
    ASSERT_TRUE(opt.valid);
    ASSERT_TRUE(opt.audited);

    Machine reference(cfg.machine);
    reference.engine().setAllocator(Engine::AllocatorKind::Reference);
    // The Reference oracle allocates per rerun by design; don't let
    // the Debug alloc guard abort this intentional A/B run.
    reference.engine().setAllocGuardEnforced(false);
    RunResult ref = runExperimentOn(reference, cfg, *workload);
    ASSERT_TRUE(ref.valid);
    ASSERT_TRUE(ref.audited);

    EXPECT_EQ(opt.auditDigest, ref.auditDigest)
        << "optimized hot path changed the audited event stream for "
        << GetParam();
    EXPECT_EQ(opt.seconds, ref.seconds);
    EXPECT_EQ(opt.events, ref.events);
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, AuditedWorkloads,
    ::testing::ValuesIn(registeredWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-' || c == '_')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace mcscope
