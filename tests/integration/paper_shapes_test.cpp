/**
 * @file
 * Integration tests asserting the paper's headline observations hold
 * end-to-end in the reproduction.  Each test names the paper artifact
 * it guards.  These are the contract between the model and the paper:
 * if a calibration change breaks one of these, the reproduction has
 * regressed.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/pop/pop.hh"
#include "core/experiment.hh"
#include "core/metrics.hh"
#include "kernels/blas3.hh"
#include "kernels/nas_cg.hh"
#include "kernels/nas_ft.hh"
#include "kernels/stream.hh"
#include "machine/config.hh"
#include "simmpi/collectives.hh"
#include "simmpi/comm.hh"

namespace mcscope {
namespace {

ExperimentConfig
base(const MachineConfig &m, int ranks)
{
    ExperimentConfig c;
    c.machine = m;
    c.option = table5Options()[0];
    c.ranks = ranks;
    return c;
}

NumactlOption
pinnedSpread()
{
    return {"spread", TaskScheme::Spread, MemPolicy::LocalAlloc};
}

NumactlOption
pinnedPacked()
{
    return {"packed", TaskScheme::Packed, MemPolicy::LocalAlloc};
}

/** Figures 2-3: bandwidth scales with sockets, not cores. */
TEST(PaperShapes, StreamBandwidthScalesWithSocketsNotCores)
{
    StreamWorkload stream(4u << 20, 8);
    MachineConfig longs = longsConfig();

    auto bandwidth = [&](int ranks, const NumactlOption &opt) {
        ExperimentConfig cfg = base(longs, ranks);
        cfg.option = opt;
        RunResult r = runExperiment(cfg, stream);
        EXPECT_TRUE(r.valid);
        return stream.bytesPerIteration() * 8.0 * ranks / r.seconds;
    };

    // Socket-first: aggregate grows ~linearly through 8 ranks.
    double b1 = bandwidth(1, pinnedSpread());
    double b8 = bandwidth(8, pinnedSpread());
    EXPECT_GT(b8 / b1, 6.0);

    // Adding second cores on the same sockets is flat.
    double b16 = bandwidth(16, pinnedSpread());
    EXPECT_LT(b16 / b8, 1.15);

    // Core-first: 2 ranks fill socket 0 and gain almost nothing.
    double b2_packed = bandwidth(2, pinnedPacked());
    EXPECT_LT(b2_packed / b1, 1.15);
}

/** Section 3.3: Longs single-core bandwidth < half the expected. */
TEST(PaperShapes, LongsSingleCoreBandwidthBelowHalfExpected)
{
    StreamWorkload stream(4u << 20, 8);
    ExperimentConfig cfg = base(longsConfig(), 1);
    cfg.option = pinnedSpread();
    RunResult r = runExperiment(cfg, stream);
    double bw = stream.bytesPerIteration() * 8.0 / r.seconds;
    EXPECT_LT(bw, 0.5 * 4.1e9);
    // ...while the 2-socket DMZ gets most of the part's bandwidth.
    ExperimentConfig dcfg = base(dmzConfig(), 1);
    dcfg.option = pinnedSpread();
    RunResult rd = runExperiment(dcfg, stream);
    double bwd = stream.bytesPerIteration() * 8.0 / rd.seconds;
    EXPECT_GT(bwd, 0.8 * 4.1e9 / 1.2);
}

/** Figure 9 vs Figure 10: DGEMM Star ~= Single; STREAM Star > 2x. */
TEST(PaperShapes, SingleStarContrast)
{
    MachineConfig longs = longsConfig();

    DgemmWorkload dgemm(1000, 1, BlasVariant::Acml);
    ExperimentConfig single = base(longs, 1);
    single.option = pinnedPacked();
    double t1 = runExperiment(single, dgemm).seconds;
    ExperimentConfig star = base(longs, 16);
    star.option = pinnedPacked();
    double t16 = runExperiment(star, dgemm).seconds;
    double dgemm_ratio = singleToStarRatio(t1, t16);
    EXPECT_LT(dgemm_ratio, 1.25); // near 1:1 (Figure 9)

    StreamWorkload stream(4u << 20, 8);
    double s1 = runExperiment(single, stream).seconds;
    double s16 = runExperiment(star, stream).seconds;
    double stream_ratio = singleToStarRatio(s1, s16);
    EXPECT_GT(stream_ratio, 2.0); // net per-socket loss (Figure 10)
}

/** Figures 11-13: SysV wrecks small messages, spares large ones. */
TEST(PaperShapes, SysVHurtsSmallMessagesOnly)
{
    MachineConfig longs = longsConfig();
    Machine m_usysv(longs), m_sysv(longs);
    auto pl = Placement::create(longs, m_usysv.topology(),
                                table5Options()[0], 2);
    ASSERT_TRUE(pl.has_value());
    MpiRuntime fast(m_usysv, *pl, MpiImpl::Lam, SubLayer::USysV);
    MpiRuntime slow(m_sysv, *pl, MpiImpl::Lam, SubLayer::SysV);

    double small = 8.0;
    double large = 4.0 * 1024.0 * 1024.0;
    // Small-message one-way cost: SysV >> USysV.
    EXPECT_GT(slow.messageOverhead(0, 1, small) /
                  fast.messageOverhead(0, 1, small),
              3.0);
    // Large messages: the payload dominates; total time ratio ~ 1.
    auto total = [&](MpiRuntime &rt) {
        return rt.messageOverhead(0, 1, large) +
               large / rt.transferBandwidth(0, 1, large);
    };
    EXPECT_LT(total(slow) / total(fast), 1.05);
}

/** Figures 16-17: same-die communication beats cross-socket. */
TEST(PaperShapes, SameDieCommunicationAdvantage)
{
    MachineConfig dmz = dmzConfig();
    Machine machine(dmz);
    auto pl = Placement::create(dmz, machine.topology(),
                                pinnedPacked(), 4);
    ASSERT_TRUE(pl.has_value());
    MpiRuntime rt(machine, *pl);
    double bw_same = rt.transferBandwidth(0, 1, 1 << 20);
    double bw_cross = rt.transferBandwidth(0, 2, 1 << 20);
    double gain = bw_same / bw_cross - 1.0;
    // Paper: approximately 10 to 13%.
    EXPECT_GT(gain, 0.08);
    EXPECT_LT(gain, 0.18);
    EXPECT_LT(rt.messageOverhead(0, 1, 64.0),
              rt.messageOverhead(0, 2, 64.0));
}

/** Tables 2-3: localalloc best; membind/interleave pathological. */
TEST(PaperShapes, NumactlOptionOrderingOnLongs)
{
    NasCgWorkload cg(nasCgClassB());
    OptionSweepResult sweep = sweepOptions(longsConfig(), {8}, cg);
    const auto &row = sweep.seconds[0];
    double def = row[0], one_la = row[1], one_mb = row[2];
    double two_la = row[3], two_mb = row[4], il = row[5];

    // LocalAlloc(one/socket) is best or ties default at full spread.
    EXPECT_LE(one_la, def * 1.05);
    // Membind is the pathology: ~2x or worse (paper: 109 vs 51).
    EXPECT_GT(one_mb / one_la, 1.8);
    EXPECT_GT(two_mb / two_la, 1.5);
    // Interleave clearly worse than default (paper: 67 vs 51).
    EXPECT_GT(il / def, 1.2);
}

/** Table 2, 16 tasks: Default ~ Two MPI + Local Alloc at full load. */
TEST(PaperShapes, DefaultMatchesPinnedAtFullLoad)
{
    NasCgWorkload cg(nasCgClassB());
    OptionSweepResult sweep = sweepOptions(longsConfig(), {16}, cg);
    const auto &row = sweep.seconds[0];
    EXPECT_TRUE(std::isnan(row[1])); // One MPI infeasible at 16
    EXPECT_NEAR(row[0] / row[3], 1.0, 0.05);
}

/** Abstract: >25% improvement available from placement choices. */
TEST(PaperShapes, PlacementDecisionsWorthOverTwentyFivePercent)
{
    NasCgWorkload cg(nasCgClassB());
    NasFtWorkload ft(nasFtClassB());
    for (const Workload *w :
         std::initializer_list<const Workload *>{&cg, &ft}) {
        OptionSweepResult sweep = sweepOptions(longsConfig(), {8}, *w);
        double lo = 1e300, hi = 0.0;
        for (double v : sweep.seconds[0]) {
            if (std::isnan(v))
                continue;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        EXPECT_GT(hi / lo, 1.25) << w->name();
    }
}

/** Table 4: CG scaling collapses on Longs beyond 8 tasks. */
TEST(PaperShapes, CgStopsScalingOnLongs)
{
    NasCgWorkload cg(nasCgClassB());
    auto t = defaultScalingTimes(longsConfig(), {8, 16}, cg);
    // 16 tasks no better than ~15% over 8 tasks (paper: worse).
    EXPECT_GT(t[1] / t[0], 0.85);
}

/** Table 4: FT keeps scaling (weakly) where CG stalls. */
TEST(PaperShapes, FtOutScalesCgAtSixteen)
{
    NasCgWorkload cg(nasCgClassB());
    NasFtWorkload ft(nasFtClassB());
    auto tcg = defaultScalingTimes(longsConfig(), {8, 16}, cg);
    auto tft = defaultScalingTimes(longsConfig(), {8, 16}, ft);
    EXPECT_LT(tft[1] / tft[0], tcg[1] / tcg[0]);
}

/** Section 4: 10-20% app-level gain from placement (Longs). */
TEST(PaperShapes, ApplicationLevelPlacementGain)
{
    PopWorkload pop(popX1Config());
    OptionSweepResult sweep = sweepOptions(longsConfig(), {4}, pop);
    double gain = placementGain(sweep.seconds[0]);
    EXPECT_GT(gain, 0.03);
    double lo = 1e300, hi = 0.0;
    for (double v : sweep.seconds[0]) {
        if (std::isnan(v))
            continue;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GT(hi / lo, 1.10);
}

/** Table 12: POP scales nearly linearly everywhere. */
TEST(PaperShapes, PopScalesLinearly)
{
    PopWorkload pop(popX1Config());
    for (auto cfg_fn : {dmzConfig, longsConfig}) {
        MachineConfig m = cfg_fn();
        auto t = defaultScalingTimes(m, {1, m.totalCores()}, pop);
        double eff = t[0] / t[1] / m.totalCores();
        EXPECT_GT(eff, 0.85) << m.name;
        EXPECT_LT(eff, 1.25) << m.name;
    }
}

} // namespace
} // namespace mcscope
