/**
 * @file
 * Thread/process-concurrency stress suite (ctest label: race).
 *
 * These tests exist to give ThreadSanitizer something to bite on:
 * they hammer the three places the project shares state across
 * threads -- the parallelFor executor, the ResultCache memory+disk
 * tiers, and the runPlanSharded supervisor poll loop -- with far more
 * contention than any real sweep produces.  They assert functional
 * correctness too (no lost updates, no torn cache entries), so they
 * earn their keep even in non-TSan builds, but the primary consumer
 * is the `ctest -L race` leg of the sanitizer CI job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/journal.hh"
#include "core/parallel_for.hh"
#include "core/plan.hh"
#include "core/runner.hh"
#include "machine/config.hh"
#include "util/subprocess.hh"

namespace mcscope {
namespace {

class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("mcscope_race_" + tag + "_" +
                  std::to_string(static_cast<unsigned>(getpid()))))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }

    const std::string &path() const { return path_; }
    std::string file(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

/** A tiny but real plan: cheap to simulate, fully cacheable. */
SweepPlan
tinyPlan()
{
    SweepAxes axes;
    axes.machinePreset = "dmz";
    axes.workloads = {"nas-ep-b"};
    axes.rankCounts = {2};
    axes.options = {table5Options().front()};
    return SweepPlan::expand(axes);
}

/** A few-point plan so a 2-shard run actually interleaves workers.
 *  (ranks stay <= 2: 'One MPI + Local Alloc' pins every rank to one
 *  DMZ socket, so 4 ranks would be an infeasible point.) */
SweepPlan
shardedPlan()
{
    SweepAxes axes;
    axes.machinePreset = "dmz";
    axes.workloads = {"nas-ep-b"};
    axes.rankCounts = {1, 2};
    axes.options = {table5Options().front(), table5Options()[1]};
    return SweepPlan::expand(axes);
}

/** One real RunResult to replicate under many synthetic digests. */
const RunResult &
sampleResult()
{
    static const RunResult result = [] {
        ResultCache cache;
        RunnerOptions opts;
        opts.cache = &cache;
        return runPlan(tinyPlan(), opts).bySpec.at(0);
    }();
    return result;
}

TEST(RaceStress, ParallelForKeepsSlotsAndCountsExact)
{
    constexpr size_t kItems = 512;
    constexpr int kRounds = 20;
    for (int round = 0; round < kRounds; ++round) {
        std::vector<uint64_t> slots(kItems, 0);
        std::atomic<uint64_t> calls{0};
        parallelFor(kItems, 8, [&](size_t i) {
            slots[i] = i * 2654435761u + round;
            calls.fetch_add(1, std::memory_order_relaxed);
        });
        ASSERT_EQ(calls.load(), kItems);
        for (size_t i = 0; i < kItems; ++i)
            ASSERT_EQ(slots[i], i * 2654435761u + round);
    }
}

TEST(RaceStress, ParallelForBackToBackPoolsDoNotInterfere)
{
    // Two executors alive in overlapping lifetimes (a sweep inside a
    // sweep never happens, but destruction-vs-spawn races would show
    // here first).
    std::atomic<uint64_t> total{0};
    std::thread other([&] {
        for (int r = 0; r < 10; ++r)
            parallelFor(64, 4, [&](size_t) {
                total.fetch_add(1, std::memory_order_relaxed);
            });
    });
    for (int r = 0; r < 10; ++r)
        parallelFor(64, 4, [&](size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    other.join();
    EXPECT_EQ(total.load(), 2u * 10u * 64u);
}

TEST(RaceStress, ResultCacheSurvivesConcurrentMixedTraffic)
{
    TempDir dir("cache_mixed");
    ResultCache cache(dir.path());
    const RunResult &sample = sampleResult();

    constexpr int kThreads = 8;
    constexpr uint64_t kDigests = 64;
    std::atomic<uint64_t> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (uint64_t i = 0; i < kDigests; ++i) {
                // Writers and readers chase each other over the same
                // digest set; every digest is stored by two threads.
                const uint64_t digest = 0x9e3779b900000000ull + i;
                if (t % 2 == 0) {
                    cache.store(digest, sample);
                } else if (auto hit = cache.lookup(digest)) {
                    if (hit->result.seconds != sample.seconds)
                        mismatches.fetch_add(1);
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(mismatches.load(), 0u);
    // After the dust settles every digest must be present and intact.
    for (uint64_t i = 0; i < kDigests; ++i) {
        auto hit = cache.lookup(0x9e3779b900000000ull + i);
        ASSERT_TRUE(hit.has_value()) << i;
        EXPECT_EQ(hit->result.seconds, sample.seconds);
        EXPECT_EQ(hit->result.events, sample.events);
    }
}

TEST(RaceStress, TwoCacheInstancesShareOneDirectory)
{
    // Two ResultCache instances on one directory model two processes
    // sharing MCSCOPE_CACHE_DIR: both write the same digests (the
    // atomic temp-file + rename path), both read the other's entries.
    TempDir dir("cache_shared");
    ResultCache a(dir.path());
    ResultCache b(dir.path());
    const RunResult &sample = sampleResult();

    constexpr uint64_t kDigests = 48;
    std::atomic<uint64_t> corrupt{0};
    auto hammer = [&](ResultCache &mine, ResultCache &theirs) {
        for (uint64_t i = 0; i < kDigests; ++i) {
            const uint64_t digest = 0x5bd1e99500000000ull + i;
            mine.store(digest, sample);
            if (auto hit = theirs.lookup(digest)) {
                if (hit->result.seconds != sample.seconds)
                    corrupt.fetch_add(1);
            }
        }
    };
    std::thread ta([&] { hammer(a, b); });
    std::thread tb([&] { hammer(b, a); });
    ta.join();
    tb.join();

    EXPECT_EQ(corrupt.load(), 0u);
    // A third instance (a later process) sees every entry on disk.
    ResultCache later(dir.path());
    for (uint64_t i = 0; i < kDigests; ++i) {
        auto hit = later.lookup(0x5bd1e99500000000ull + i);
        ASSERT_TRUE(hit.has_value()) << i;
        EXPECT_TRUE(hit->fromDisk) << i;
    }
    EXPECT_EQ(later.stats().corrupt, 0u);
}

TEST(RaceStress, ConcurrentSpawnsToDeadChildrenSurviveEpipe)
{
    // Regression for the per-write SIGPIPE save/restore race: the old
    // Subprocess code wrapped each manifest write in a sigaction
    // save/restore pair, so two threads spawning workers concurrently
    // could interleave as [A saves, B saves, A restores(default),
    // A... gets killed by SIGPIPE mid-write].  The fix ignores
    // SIGPIPE process-wide, exactly once.
    //
    // Each child is /bin/true: it exits before draining stdin, and
    // the payload exceeds any pipe buffer, so every spawn drives
    // writeAll() into EPIPE territory.  Under TSan this also checks
    // the once-flag itself; under any build, surviving to the end
    // proves no thread reverted the disposition mid-write.
    const std::string payload(4u << 20, 'x'); // >> 64 KiB pipe buffer
    constexpr int kThreads = 8;
    constexpr int kSpawnsPerThread = 16;
    std::atomic<int> reaped{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kSpawnsPerThread; ++i) {
                Subprocess child({"/bin/true"}, payload);
                child.wait();
                if (child.exitCode() == 0)
                    reaped.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    // Reaching this line at all is the real assertion (SIGPIPE's
    // default disposition kills the whole process); the count checks
    // that no spawn was lost or mis-reaped along the way.
    EXPECT_EQ(reaped.load(), kThreads * kSpawnsPerThread);
}

TEST(RaceStress, ShardedSupervisorRunsUnderCacheContention)
{
    // The supervisor's worker poll loop and journal appends run while
    // other threads hammer the same on-disk cache directory the
    // workers write through -- the full cross-process + cross-thread
    // surface of DESIGN.md §10 in one pot.
    TempDir dir("sharded");
    SweepPlan plan = shardedPlan();

    ShardOptions opts;
    opts.shards = 2;
    opts.journalPath = dir.file("journal.jsonl");
    opts.cacheDir = dir.file("cache");
    opts.workerExe = MCSCOPE_TOOL_PATH;

    std::atomic<bool> stop{false};
    std::thread noise([&] {
        ResultCache side(dir.file("cache"));
        const RunResult &sample = sampleResult();
        uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const uint64_t digest = 0x7f4a7c1500000000ull + (i % 32);
            side.store(digest, sample);
            side.lookup(digest);
            ++i;
        }
    });

    PlanResults results = runPlanSharded(plan, opts);
    stop.store(true);
    noise.join();

    ASSERT_EQ(results.bySpec.size(), plan.specs().size());
    for (size_t i = 0; i < results.bySpec.size(); ++i)
        EXPECT_TRUE(results.bySpec[i].valid) << "spec " << i;
    EXPECT_EQ(results.shard.gaps, 0u);
    EXPECT_EQ(results.shard.executed + results.shard.journaled,
              plan.specs().size());

    // The journal must have vouched for every executed point.
    JournalLoadStats stats;
    auto journaled = loadJournal(opts.journalPath, &stats);
    EXPECT_EQ(stats.corrupt, 0u);
    EXPECT_EQ(journaled.size(), plan.specs().size());
}

} // namespace
} // namespace mcscope
