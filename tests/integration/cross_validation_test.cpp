/**
 * @file
 * Cross-validation: the cost models' assumed constants against the
 * functional implementations that justify them.  When a functional
 * kernel and its cost model drift apart, these tests catch it.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/md/engine.hh"
#include "apps/pop/solver.hh"
#include "kernels/fft.hh"
#include "kernels/nas_mg.hh"
#include "kernels/sparse.hh"
#include "util/rng.hh"

namespace mcscope {
namespace {

TEST(CrossValidation, LammpsLjNeighborCountMatchesModel)
{
    // The LJ cost model charges ~75 neighbors per atom (37.5 half
    // pairs); the functional system at LAMMPS density 0.8442 and
    // cutoff 2.5 sigma must land nearby.
    MdSystem sys = makeMdSystem(4000, 0.8442, MdStyle::LennardJones,
                                99);
    double nbrs = averageNeighborCount(sys);
    EXPECT_NEAR(nbrs, 75.0, 20.0);
}

TEST(CrossValidation, ChainNeighborhoodIsSparse)
{
    // The chain model charges ~2 bonds + a thin pair shell; the
    // functional WCA-cutoff system must be far sparser than LJ.
    MdSystem lj = makeMdSystem(2000, 0.8442, MdStyle::LennardJones, 7);
    MdSystem chain = makeMdSystem(2000, 0.8442, MdStyle::Chain, 7);
    EXPECT_LT(averageNeighborCount(chain),
              averageNeighborCount(lj) / 5.0);
}

TEST(CrossValidation, CgIterationCountJustifiesFusion)
{
    // The NAS CG model fuses 25 inner iterations per outer step; a
    // functional CG on an SPD system of the same flavor converges on
    // that order of iterations, so the fusion granularity is sane.
    CsrMatrix m = makeSpdMatrix(2000, 12, 77);
    std::vector<double> b(2000, 1.0);
    CgResult res = conjugateGradient(m, b, 200, 1e-8);
    EXPECT_GE(res.iterations, 5);
    EXPECT_LE(res.iterations, 60);
}

TEST(CrossValidation, BarotropicSolverIterationsMatchModel)
{
    // The POP model charges 200 CG iterations per solve; the
    // functional solver on a stiff implicit system needs the same
    // order of magnitude (tens to hundreds).
    Rng rng(11);
    Field2d f(80, 96);
    for (double &v : f.data)
        v = rng.uniform(-1.0, 1.0);
    BarotropicResult res = solveBarotropic(f, 2.0, 2000, 1e-8);
    EXPECT_GE(res.iterations, 20);
    EXPECT_LE(res.iterations, 500);
}

TEST(CrossValidation, PreconditionerCutsIterationsSameAnswer)
{
    Rng rng(13);
    Field2d f(48, 64);
    for (double &v : f.data)
        v = rng.uniform(-1.0, 1.0);
    BarotropicResult plain = solveBarotropic(f, 2.0, 2000, 1e-10);
    BarotropicResult pre =
        solveBarotropicPreconditioned(f, 2.0, 2000, 1e-10);
    EXPECT_LE(pre.iterations, plain.iterations);
    for (size_t i = 0; i < f.data.size(); ++i) {
        EXPECT_NEAR(pre.solution.data[i], plain.solution.data[i],
                    1e-6);
    }
}

TEST(CrossValidation, FftFlopFormulaTracksWork)
{
    // 5 n log2 n: doubling n slightly more than doubles the flops.
    double f1 = fftFlops(1 << 16);
    double f2 = fftFlops(1 << 17);
    EXPECT_GT(f2 / f1, 2.0);
    EXPECT_LT(f2 / f1, 2.2);
}

TEST(CrossValidation, MgVCycleSweepBudgetMatchesModel)
{
    // The MG cost model charges ~4 sweeps per level; one V-cycle
    // performs 2 pre- + 1 post-sweep plus residual/transfer work, so
    // the budget is consistent.
    Field3d v(8, 0.0);
    v.at(4, 4, 4) = 1.0;
    Field3d u(8);
    double r = mgVCycle(u, v, /*pre=*/2, /*post=*/1);
    EXPECT_LT(r, mgResidualNorm(Field3d(8), v));
}

} // namespace
} // namespace mcscope
