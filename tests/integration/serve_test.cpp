/**
 * @file
 * End-to-end properties of `mcscope serve` over loopback TCP, driving
 * the real binary (MCSCOPE_TOOL_PATH): a daemon, submit clients, and
 * `worker --connect` workers as real subprocesses.
 *
 * The core properties:
 *  - submit output is byte-identical to `mcscope batch` for the same
 *    spec, and a resubmission is served entirely from the journal;
 *  - a TCP worker SIGKILLed at every point index degrades exactly
 *    like a crashed local subprocess: a clean worker finishes the
 *    batch and the client still gets the byte-identical table.
 */

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "util/subprocess.hh"
#include "util/transport.hh"

using namespace mcscope;

namespace {

/** Fresh empty directory under the system temp dir. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("mcscope_" + tag + "_" +
                  std::to_string(static_cast<unsigned>(getpid()))))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    std::string file(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

struct ToolRun
{
    int exit = -1;
    int signal = 0;
    std::string out;
};

/** Run the real tool to completion, capturing stdout. */
ToolRun
runTool(const std::vector<std::string> &args,
        const std::vector<std::string> &extra_env = {})
{
    std::vector<std::string> argv{MCSCOPE_TOOL_PATH};
    argv.insert(argv.end(), args.begin(), args.end());
    Subprocess proc(argv, /*stdin_data=*/"", extra_env);
    ToolRun run;
    while (proc.readAvailable(run.out)) {
        struct pollfd pfd = {proc.outFd(), POLLIN, 0};
        if (pfd.fd >= 0)
            ::poll(&pfd, 1, 50);
    }
    proc.wait();
    run.exit = proc.exitCode();
    run.signal = proc.termSignal();
    return run;
}

/** The tool as a long-running background process (daemon, client). */
class BackgroundTool
{
  public:
    BackgroundTool(const std::vector<std::string> &args,
                   const std::vector<std::string> &extra_env = {})
    {
        std::vector<std::string> argv{MCSCOPE_TOOL_PATH};
        argv.insert(argv.end(), args.begin(), args.end());
        proc_ = std::make_unique<Subprocess>(
            argv, /*stdin_data=*/"", extra_env);
    }

    /** Pump stdout; true while the process keeps the pipe open. */
    bool pump()
    {
        if (!open_)
            return false;
        open_ = proc_->readAvailable(out_);
        return open_;
    }

    /** Wait until stdout contains `needle`; false on timeout/exit. */
    bool waitForOutput(const std::string &needle, int timeout_ms)
    {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(timeout_ms);
        while (out_.find(needle) == std::string::npos) {
            if (!pump() &&
                out_.find(needle) == std::string::npos)
                return false;
            if (std::chrono::steady_clock::now() > deadline)
                return false;
            struct pollfd pfd = {proc_->outFd(), POLLIN, 0};
            if (pfd.fd >= 0)
                ::poll(&pfd, 1, 50);
        }
        return true;
    }

    /** Drain until exit and reap. */
    ToolRun wait()
    {
        while (pump()) {
            struct pollfd pfd = {proc_->outFd(), POLLIN, 0};
            if (pfd.fd >= 0)
                ::poll(&pfd, 1, 50);
        }
        proc_->wait();
        ToolRun run;
        run.exit = proc_->exitCode();
        run.signal = proc_->termSignal();
        run.out = out_;
        return run;
    }

    void kill() { proc_->kill(); }
    pid_t pid() const { return proc_->pid(); }
    const std::string &out() const { return out_; }

  private:
    std::unique_ptr<Subprocess> proc_;
    std::string out_;
    bool open_ = true;
};

/** Write the small plan spec used throughout; returns its path. */
std::string
writeSpec(const TempDir &dir)
{
    const std::string path = dir.file("plan.json");
    std::ofstream(path) << "{\n"
                           "  \"machine\": \"dmz\",\n"
                           "  \"workloads\": [\"nas-ep-b\"],\n"
                           "  \"ranks\": [2, 4],\n"
                           "  \"options\": [0, 3]\n"
                           "}\n";
    return path;
}

/** Parse the bound port out of the daemon's startup banner. */
int
listeningPort(const std::string &out)
{
    const std::string marker = "listening on 127.0.0.1:";
    const size_t pos = out.find(marker);
    if (pos == std::string::npos)
        return -1;
    int port = 0;
    for (size_t i = pos + marker.size();
         i < out.size() && out[i] >= '0' && out[i] <= '9'; ++i)
        port = port * 10 + (out[i] - '0');
    return port > 0 ? port : -1;
}

TEST(Serve, SubmitMatchesBatchByteIdenticalAndDedups)
{
    TempDir dir("serve_submit");
    const std::string spec = writeSpec(dir);

    ToolRun golden = runTool({"batch", spec, "--csv"});
    ASSERT_EQ(golden.exit, 0) << golden.out;
    ASSERT_FALSE(golden.out.empty());

    BackgroundTool serve({"serve", "--port", "0", "--shards", "2",
                          "--journal", dir.file("serve.journal"),
                          "--max-batches", "2"});
    ASSERT_TRUE(serve.waitForOutput("listening on", 30000))
        << serve.out();
    const int port = listeningPort(serve.out());
    ASSERT_GT(port, 0) << serve.out();
    const std::string addr = "127.0.0.1:" + std::to_string(port);

    ToolRun first =
        runTool({"submit", spec, "--connect", addr, "--csv"});
    ASSERT_EQ(first.exit, 0) << first.out;
    EXPECT_EQ(first.out, golden.out);

    // The resubmission costs nothing: every point is a journal hit,
    // fed from the daemon's cross-client dedup map.
    ToolRun second = runTool({"submit", spec, "--connect", addr,
                              "--csv", "--cache-stats"});
    ASSERT_EQ(second.exit, 0) << second.out;
    EXPECT_NE(second.out.find("4 from journal, 0 executed"),
              std::string::npos)
        << second.out;
    EXPECT_EQ(second.out.substr(0, golden.out.size()), golden.out);

    ToolRun served = serve.wait();
    EXPECT_EQ(served.exit, 0) << served.out;
}

TEST(Serve, HumanTableMatchesBatchToo)
{
    TempDir dir("serve_table");
    const std::string spec = writeSpec(dir);

    ToolRun golden = runTool({"batch", spec});
    ASSERT_EQ(golden.exit, 0) << golden.out;

    BackgroundTool serve({"serve", "--port", "0", "--shards", "1",
                          "--max-batches", "1"});
    ASSERT_TRUE(serve.waitForOutput("listening on", 30000))
        << serve.out();
    const int port = listeningPort(serve.out());
    ASSERT_GT(port, 0) << serve.out();

    ToolRun submit = runTool({"submit", spec, "--connect",
                              "127.0.0.1:" + std::to_string(port)});
    ASSERT_EQ(submit.exit, 0) << submit.out;
    EXPECT_EQ(submit.out, golden.out);

    ToolRun served = serve.wait();
    EXPECT_EQ(served.exit, 0) << served.out;
}

TEST(Serve, RemoteWorkerKilledAtEveryPointIsRecovered)
{
    TempDir dir("serve_worker_crash");
    const std::string spec = writeSpec(dir);

    ToolRun golden = runTool({"batch", spec, "--csv"});
    ASSERT_EQ(golden.exit, 0) << golden.out;
    const size_t points = 4;

    for (size_t i = 0; i < points; ++i) {
        SCOPED_TRACE("worker crash at point " + std::to_string(i));
        const std::string journal =
            dir.file("crash_" + std::to_string(i) + ".journal");

        // --shards 0: the daemon has no local workers, so the batch
        // runs entirely on the connected TCP workers.
        BackgroundTool serve({"serve", "--port", "0", "--shards",
                              "0", "--journal", journal,
                              "--max-batches", "1"});
        ASSERT_TRUE(serve.waitForOutput("listening on", 30000))
            << serve.out();
        const int port = listeningPort(serve.out());
        ASSERT_GT(port, 0) << serve.out();
        const std::string addr =
            "127.0.0.1:" + std::to_string(port);

        // The doomed worker connects first, so it owns the whole
        // manifest and dies (SIGKILL, from the fault hook) the moment
        // it reaches point i.
        BackgroundTool doomed(
            {"worker", "--connect", addr},
            {"MCSCOPE_FAULT_INJECT=crash:" + std::to_string(i)});

        BackgroundTool submit(
            {"submit", spec, "--connect", addr, "--csv"});

        // Give the doomed worker time to take the manifest and die,
        // then attach the clean worker that finishes the batch
        // (retrying the suspect point).
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        BackgroundTool clean({"worker", "--connect", addr});

        ToolRun submitted = submit.wait();
        ASSERT_EQ(submitted.exit, 0) << submitted.out;
        EXPECT_EQ(submitted.out, golden.out);

        ToolRun served = serve.wait();
        EXPECT_EQ(served.exit, 0) << served.out;
        // The daemon's batch summary records the crash recovery.
        EXPECT_NE(served.out.find("1 crashes"), std::string::npos)
            << served.out;

        // The clean worker gets EOF when the daemon exits and must
        // leave quietly; the doomed one died by SIGKILL.
        ToolRun clean_run = clean.wait();
        EXPECT_EQ(clean_run.exit, 0);
        ToolRun doomed_run = doomed.wait();
        EXPECT_EQ(doomed_run.signal, SIGKILL);
    }
}

TEST(Serve, BadSpecsAreRejectedAtBothEnds)
{
    TempDir dir("serve_badspec");
    const std::string bad = dir.file("bad.json");
    std::ofstream(bad) << "{\"machine\": \"longs\"}\n";

    BackgroundTool serve({"serve", "--port", "0", "--shards", "1",
                          "--max-batches", "0"});
    ASSERT_TRUE(serve.waitForOutput("listening on", 30000))
        << serve.out();
    const int port = listeningPort(serve.out());
    ASSERT_GT(port, 0) << serve.out();

    // The submit client computes digests locally, so it catches a
    // bad spec before ever bothering the daemon.
    ToolRun submit = runTool({"submit", bad, "--connect",
                              "127.0.0.1:" + std::to_string(port)});
    EXPECT_EQ(submit.exit, 2);
    EXPECT_NE(submit.out.find("workloads"), std::string::npos)
        << submit.out;

    // A hand-rolled client that skips that check gets the daemon's
    // error frame and a close instead of a hang.
    std::string error;
    int fd = tcpConnect("127.0.0.1", port, &error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(writeFrame(
        fd, "{\"format\": \"mcscope-serve-1\", \"role\": \"submit\","
            " \"spec\": {\"machine\": \"longs\"}}"));
    std::optional<std::string> reply = readFrame(fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("\"error\""), std::string::npos) << *reply;
    EXPECT_NE(reply->find("workloads"), std::string::npos) << *reply;
    bool eof = false;
    EXPECT_FALSE(readFrame(fd, &eof).has_value());
    EXPECT_TRUE(eof) << "daemon must close after the error frame";
    ::close(fd);

    // A malformed hello (wrong format string) is refused the same
    // way, and the daemon survives both abuses to serve the next
    // well-behaved peer.
    fd = tcpConnect("127.0.0.1", port, &error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(writeFrame(fd, "{\"format\": \"wrong-1\"}"));
    reply = readFrame(fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("\"error\""), std::string::npos) << *reply;
    ::close(fd);

    const std::string spec = writeSpec(dir);
    ToolRun good = runTool({"submit", spec, "--connect",
                            "127.0.0.1:" + std::to_string(port)});
    EXPECT_EQ(good.exit, 0) << good.out;

    serve.kill();
}

} // namespace
