/**
 * @file
 * End-to-end crash/resume properties of the sharded batch executor,
 * driving the real `mcscope` binary (MCSCOPE_TOOL_PATH is injected by
 * CMake) so the worker re-exec path, the journal, and the fault
 * injection hook are all exercised exactly as in production.
 *
 * The core property: for a small plan, crashing a worker at *every*
 * point index and then resuming must reproduce the uninterrupted
 * CSV byte for byte.
 */

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "util/subprocess.hh"

using namespace mcscope;

namespace {

/** Fresh empty directory under the system temp dir. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("mcscope_" + tag + "_" +
                  std::to_string(static_cast<unsigned>(getpid()))))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    std::string file(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

struct ToolRun {
    int exit = -1;
    int signal = 0;
    std::string out;
};

/** Run the real tool to completion, capturing stdout. */
ToolRun
runTool(const std::vector<std::string> &args,
        const std::vector<std::string> &extra_env = {})
{
    std::vector<std::string> argv{MCSCOPE_TOOL_PATH};
    argv.insert(argv.end(), args.begin(), args.end());
    Subprocess proc(argv, /*stdin_data=*/"", extra_env);
    ToolRun run;
    while (proc.readAvailable(run.out)) {
        struct pollfd pfd = {proc.outFd(), POLLIN, 0};
        if (pfd.fd >= 0)
            ::poll(&pfd, 1, 50);
    }
    proc.wait();
    run.exit = proc.exitCode();
    run.signal = proc.termSignal();
    return run;
}

/** Write the small plan spec used throughout; returns its path. */
std::string
writeSpec(const TempDir &dir)
{
    const std::string path = dir.file("plan.json");
    std::ofstream(path) << "{\n"
                           "  \"machine\": \"dmz\",\n"
                           "  \"workloads\": [\"nas-ep-b\"],\n"
                           "  \"ranks\": [2, 4],\n"
                           "  \"options\": [0, 3]\n"
                           "}\n";
    return path;
}

/**
 * Plan points in a pivoted batch CSV: one data row per rank, one
 * column per numactl option after the five fixed columns.
 */
size_t
countPoints(const std::string &csv)
{
    size_t rows = 0;
    size_t optionCols = 0;
    bool sawHeader = false;
    size_t start = 0;
    while (start < csv.size()) {
        size_t end = csv.find('\n', start);
        if (end == std::string::npos)
            end = csv.size();
        if (end > start) {
            if (!sawHeader) {
                sawHeader = true;
                const std::string header =
                    csv.substr(start, end - start);
                size_t fields = 1;
                for (char c : header)
                    if (c == ',')
                        ++fields;
                optionCols = fields > 5 ? fields - 5 : 0;
            } else {
                ++rows;
            }
        }
        start = end + 1;
    }
    return rows * optionCols;
}

TEST(ShardResume, CrashAtEveryPointIndexResumesByteIdentical)
{
    TempDir dir("shard_resume_crash");
    const std::string spec = writeSpec(dir);

    ToolRun golden = runTool({"batch", spec, "--csv"});
    ASSERT_EQ(golden.exit, 0) << golden.out;
    ASSERT_FALSE(golden.out.empty());
    const size_t points = countPoints(golden.out);
    ASSERT_GE(points, 2u);
    ASSERT_LE(points, 16u) << "plan grew; keep this test small";

    for (size_t i = 0; i < points; ++i) {
        SCOPED_TRACE("crash at point " + std::to_string(i));
        const std::string journal =
            dir.file("crash_" + std::to_string(i) + ".journal");

        // A worker is killed the moment it reaches point i; with no
        // retries allowed the point degrades to a gap and the batch
        // still exits cleanly.
        ToolRun faulted = runTool(
            {"batch", spec, "--csv", "--shards", "2", "--journal",
             journal, "--max-retries", "0"},
            {"MCSCOPE_FAULT_INJECT=crash:" + std::to_string(i)});
        ASSERT_EQ(faulted.exit, 0) << faulted.out;
        ASSERT_NE(faulted.out, golden.out);

        // Resume without the fault: only the gap point runs, the
        // rest comes from the journal.
        ToolRun resumed = runTool({"batch", spec, "--csv",
                                   "--cache-stats", "--resume",
                                   journal});
        ASSERT_EQ(resumed.exit, 0) << resumed.out;
        EXPECT_NE(resumed.out.find(std::to_string(points - 1) +
                                   " from journal, 1 executed"),
                  std::string::npos)
            << resumed.out;

        // A second resume replays entirely from the journal and must
        // match the uninterrupted run byte for byte.
        ToolRun replay =
            runTool({"batch", spec, "--csv", "--resume", journal});
        ASSERT_EQ(replay.exit, 0) << replay.out;
        EXPECT_EQ(replay.out, golden.out);
    }
}

TEST(ShardResume, HangIsKilledByTimeoutAndResumable)
{
    TempDir dir("shard_resume_hang");
    const std::string spec = writeSpec(dir);

    ToolRun golden = runTool({"batch", spec, "--csv"});
    ASSERT_EQ(golden.exit, 0) << golden.out;

    const std::string journal = dir.file("hang.journal");
    ToolRun faulted = runTool(
        {"batch", spec, "--csv", "--shards", "2", "--journal",
         journal, "--point-timeout", "0.3", "--max-retries", "0",
         "--cache-stats"},
        {"MCSCOPE_FAULT_INJECT=hang:1"});
    ASSERT_EQ(faulted.exit, 0) << faulted.out;
    EXPECT_NE(faulted.out.find("1 timeouts"), std::string::npos)
        << faulted.out;

    ToolRun resumed =
        runTool({"batch", spec, "--csv", "--resume", journal});
    ASSERT_EQ(resumed.exit, 0) << resumed.out;
    EXPECT_EQ(resumed.out, golden.out);
}

TEST(ShardResume, ShardedMatchesSerialWithoutFaults)
{
    TempDir dir("shard_resume_clean");
    const std::string spec = writeSpec(dir);

    ToolRun golden = runTool({"batch", spec, "--csv"});
    ASSERT_EQ(golden.exit, 0) << golden.out;

    ToolRun sharded = runTool({"batch", spec, "--csv", "--shards",
                               "3", "--journal",
                               dir.file("clean.journal")});
    ASSERT_EQ(sharded.exit, 0) << sharded.out;
    EXPECT_EQ(sharded.out, golden.out);
}

TEST(ShardResume, RefusesToOverwriteJournalWithoutResume)
{
    TempDir dir("shard_resume_refuse");
    const std::string spec = writeSpec(dir);
    const std::string journal = dir.file("existing.journal");

    ToolRun first = runTool({"batch", spec, "--csv", "--shards", "2",
                             "--journal", journal});
    ASSERT_EQ(first.exit, 0) << first.out;

    ToolRun second = runTool({"batch", spec, "--csv", "--shards",
                              "2", "--journal", journal});
    EXPECT_EQ(second.exit, 2);
    EXPECT_NE(second.out.find("--resume"), std::string::npos)
        << second.out;

    // Resuming from A while journaling into pre-existing B must also
    // refuse: B's foreign records were never vouched for by --resume.
    ToolRun crossed = runTool(
        {"batch", spec, "--csv", "--shards", "2", "--resume",
         dir.file("other.journal"), "--journal", journal});
    EXPECT_EQ(crossed.exit, 2);
    EXPECT_NE(crossed.out.find("--resume"), std::string::npos)
        << crossed.out;

    // Resuming the same journal it appends to stays allowed.
    ToolRun resumed = runTool({"batch", spec, "--csv", "--shards",
                               "2", "--resume", journal});
    EXPECT_EQ(resumed.exit, 0) << resumed.out;
}

} // namespace
