/**
 * @file
 * End-to-end tests for mcscope-lint (tools/lint/mcscope_lint.cc).
 *
 * Each rule gets a fixture snippet that must trigger it and a
 * near-miss that must not; fixtures are written to a temp tree at run
 * time (never checked in as .cc files, which would trip the linter's
 * own scan of tests/) under the src/... subpaths the path-scoped
 * rules look for.  The suite also proves the MCSCOPE_LINT_ALLOW
 * escape and the baseline file suppress findings, and -- the
 * important one -- that the live tree lints clean with the shipped
 * (empty) baseline, which is what keeps the CI lint job green.
 *
 * MCSCOPE_LINT_PATH and MCSCOPE_SOURCE_DIR are injected by
 * tests/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "util/subprocess.hh"

namespace mcscope {
namespace {

class TempTree
{
  public:
    explicit TempTree(const std::string &tag)
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("mcscope_lint_" + tag + "_" +
                  std::to_string(static_cast<unsigned>(getpid()))))
                    .string();
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~TempTree() { std::filesystem::remove_all(path_); }

    /** Write `content` at `rel` (creating directories); returns path. */
    std::string
    write(const std::string &rel, const std::string &content) const
    {
        const std::string full = path_ + "/" + rel;
        std::filesystem::create_directories(
            std::filesystem::path(full).parent_path());
        std::ofstream out(full);
        out << content;
        return full;
    }

    const std::string &root() const { return path_; }

  private:
    std::string path_;
};

struct LintRun
{
    int exit = -1;
    std::string out;
};

/** Run mcscope-lint to completion, capturing stdout. */
LintRun
runLint(const std::vector<std::string> &args)
{
    std::vector<std::string> argv{MCSCOPE_LINT_PATH};
    argv.insert(argv.end(), args.begin(), args.end());
    Subprocess proc(argv, /*stdin_data=*/"");
    LintRun run;
    while (proc.readAvailable(run.out)) {
        struct pollfd pfd = {proc.outFd(), POLLIN, 0};
        if (pfd.fd >= 0)
            ::poll(&pfd, 1, 50);
    }
    proc.wait();
    run.exit = proc.exitCode();
    return run;
}

size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(Lint, Det1FlagsRandAndWallClockSeed)
{
    TempTree t("det1");
    t.write("src/sim/fixture.cc", R"lint(
#include <cstdlib>
#include <ctime>
int f()
{
    srand(time(NULL));
    return rand();
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 1) << run.out;
    // srand, time(NULL), and rand are three distinct findings.
    EXPECT_EQ(countOccurrences(run.out, "DET-1"), 3u) << run.out;
}

TEST(Lint, Det1IgnoresOtherDirsAndMemberCalls)
{
    TempTree t("det1ok");
    // rand() is only banned under src/sim, src/core, src/kernels.
    t.write("tools/fixture.cc", R"lint(
#include <cstdlib>
int f() { return rand(); }
)lint");
    // Member calls named like banned functions are not libc calls.
    // (Qualified calls stay flagged -- std::rand() must not slip
    // through -- so only the . / -> access paths are exempt.)
    t.write("src/sim/member.cc", R"lint(
#include "sim/gen.hh"
int g(Gen &gen) { return gen.rand(); }
int h(Gen *gen) { return gen->rand(); }
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 0) << run.out;
}

TEST(Lint, Det2FlagsUnorderedIteration)
{
    TempTree t("det2");
    t.write("src/core/journal_fixture.cc", R"lint(
#include <unordered_map>
int sum()
{
    std::unordered_map<int, int> m;
    int s = 0;
    for (const auto &kv : m)
        s += kv.second;
    for (auto it = m.begin(); it != m.end(); ++it)
        s += it->second;
    return s;
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 1) << run.out;
    EXPECT_EQ(countOccurrences(run.out, "DET-2"), 2u) << run.out;
}

TEST(Lint, Det2CoversCoherenceUnit)
{
    // Coherence flow emission feeds audit digests, so the coherence
    // unit is on the DET-2 ordered-output list.
    TempTree t("det2coh");
    t.write("src/machine/coherence_fixture.cc", R"lint(
#include <unordered_map>
int sum()
{
    std::unordered_map<int, int> m;
    int s = 0;
    for (const auto &kv : m)
        s += kv.second;
    return s;
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 1) << run.out;
    EXPECT_EQ(countOccurrences(run.out, "DET-2"), 1u) << run.out;
}

TEST(Lint, Det2CoversMachineRegistryUnits)
{
    // Registry listings feed sweep expansions and CLI output, so the
    // registry and serialization units are DET-2 ordered-output code.
    TempTree t("det2reg");
    t.write("src/machine/registry_fixture.cc", R"lint(
#include <unordered_map>
int sum()
{
    std::unordered_map<int, int> m;
    int s = 0;
    for (const auto &kv : m)
        s += kv.second;
    return s;
}
)lint");
    t.write("src/machine/serialize_fixture.cc", R"lint(
#include <unordered_set>
int count()
{
    std::unordered_set<int> keys;
    int n = 0;
    for (int k : keys)
        n += k;
    return n;
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 1) << run.out;
    EXPECT_EQ(countOccurrences(run.out, "DET-2"), 2u) << run.out;
}

TEST(Lint, Parse1CoversRegistryNumericParsing)
{
    // A registry-style numeric field parser that drops errno/endptr
    // checking must be flagged; the checked form must pass.  This
    // pins PARSE-1 coverage over src/machine numeric parsing.
    TempTree t("parse1reg");
    t.write("src/machine/registry_parse.cc", R"lint(
#include <cstdlib>
double field(const char *s)
{
    return strtod(s, nullptr);
}
)lint");
    LintRun bad = runLint({t.root()});
    EXPECT_EQ(bad.exit, 1) << bad.out;
    EXPECT_EQ(countOccurrences(bad.out, "PARSE-1"), 1u) << bad.out;

    TempTree ok("parse1regok");
    ok.write("src/machine/registry_parse.cc", R"lint(
#include <cerrno>
#include <cstdlib>
double field(const char *s, bool *valid)
{
    errno = 0;
    char *end = nullptr;
    double v = strtod(s, &end);
    *valid = errno != ERANGE && end != s && *end == '\0';
    return v;
}
)lint");
    LintRun good = runLint({ok.root()});
    EXPECT_EQ(good.exit, 0) << good.out;
}

TEST(Lint, Det2AllowsLookupOnlyUse)
{
    TempTree t("det2ok");
    t.write("src/core/journal_fixture.cc", R"lint(
#include <unordered_map>
int lookup(int key)
{
    std::unordered_map<int, int> m;
    auto it = m.find(key);
    return it == m.end() ? -1 : it->second;
}
)lint");
    // Iteration outside the ordered-output units is also fine.
    t.write("src/sim/elsewhere.cc", R"lint(
#include <unordered_map>
int sum(std::unordered_map<int, int> &m)
{
    int s = 0;
    for (const auto &kv : m)
        s += kv.second;
    return s;
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 0) << run.out;
}

TEST(Lint, Hot1FlagsAllocationInMarkedRegion)
{
    TempTree t("hot1");
    t.write("src/sim/loop.cc", R"lint(
#include <string>
#include <vector>
void hot(std::vector<int> &v)
{
    // MCSCOPE_HOT_BEGIN
    int *p = new int(3);
    delete p;
    std::string label = "x";
    v.push_back(1);
    // MCSCOPE_HOT_END
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 1) << run.out;
    EXPECT_EQ(countOccurrences(run.out, "HOT-1"), 4u) << run.out;
}

TEST(Lint, Hot1ExemptsSmallVecAndCodeOutsideRegion)
{
    TempTree t("hot1ok");
    t.write("src/sim/loop.cc", R"lint(
#include <vector>
#include "util/smallvec.hh"
void warmup(std::vector<int> &v)
{
    v.push_back(0); // no region here: unconstrained
    int *p = new int(1);
    delete p;
}
void hot(mcscope::SmallVec<int, 4> &owners)
{
    // MCSCOPE_HOT_BEGIN
    owners.push_back(2);
    // MCSCOPE_HOT_END
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 0) << run.out;
}

TEST(Lint, Hot1FlagsUnmatchedMarker)
{
    TempTree t("hot1marker");
    t.write("src/sim/loop.cc", R"lint(
void f()
{
    // MCSCOPE_HOT_BEGIN
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 1) << run.out;
    EXPECT_NE(run.out.find("never closed"), std::string::npos)
        << run.out;
}

TEST(Lint, Hot2FlagsEngineUnitWithoutMarkers)
{
    TempTree t("hot2");
    // The designated steady-state units must carry hot regions; a
    // marker-free engine.cc is exactly the rot HOT-2 exists to catch.
    t.write("src/sim/engine.cc", R"lint(
void run()
{
}
)lint");
    t.write("src/sim/calqueue.hh", R"lint(
struct CalendarQueue
{
};
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 1) << run.out;
    EXPECT_EQ(countOccurrences(run.out, "HOT-2"), 2u) << run.out;
}

TEST(Lint, Hot2AcceptsEngineUnitWithMarkersAndIgnoresOtherFiles)
{
    TempTree t("hot2ok");
    t.write("src/sim/engine.cc", R"lint(
void run()
{
    // MCSCOPE_HOT_BEGIN: steady-state loop
    int x = 0;
    (void)x;
    // MCSCOPE_HOT_END
}
)lint");
    // A different sim unit without markers is fine.
    t.write("src/sim/other.cc", R"lint(
void helper()
{
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 0) << run.out;
}

TEST(Lint, Fd1FlagsCloexecAndSpawnViolations)
{
    TempTree t("fd1");
    t.write("src/util/other.cc", R"lint(
#include <fcntl.h>
#include <unistd.h>
int bad(const char *p) { return open(p, O_RDONLY); }
int worse(char *tmpl) { return mkstemp(tmpl); }
int spawn() { return fork(); }
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 1) << run.out;
    EXPECT_EQ(countOccurrences(run.out, "FD-1"), 3u) << run.out;
}

TEST(Lint, Fd1AcceptsCloexecAndSubprocessUnit)
{
    TempTree t("fd1ok");
    t.write("src/util/other.cc", R"lint(
#include <fcntl.h>
int good(const char *p) { return open(p, O_RDONLY | O_CLOEXEC); }
int tmp(char *tmpl) { return mkostemp(tmpl, O_CLOEXEC); }
)lint");
    // fork/exec are allowed only in the Subprocess wrapper.
    t.write("src/util/subprocess.cc", R"lint(
#include <unistd.h>
int spawn() { return fork(); }
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 0) << run.out;
}

TEST(Lint, Fd1FlagsSocketsWithoutCloexec)
{
    TempTree t("fd1sock");
    t.write("src/util/net.cc", R"lint(
#include <sys/socket.h>
int listener() { return socket(AF_INET, SOCK_STREAM, 0); }
int peer(int fd) { return accept4(fd, nullptr, nullptr, 0); }
int legacy(int fd) { return accept(fd, nullptr, nullptr); }
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 1) << run.out;
    // socket() and accept4() lack SOCK_CLOEXEC; accept() can never
    // set it atomically, so it is flagged unconditionally.
    EXPECT_EQ(countOccurrences(run.out, "FD-1"), 3u) << run.out;
    EXPECT_NE(run.out.find("SOCK_CLOEXEC"), std::string::npos)
        << run.out;
    EXPECT_NE(run.out.find("accept4"), std::string::npos) << run.out;
}

TEST(Lint, Fd1AcceptsCloexecSockets)
{
    TempTree t("fd1sockok");
    t.write("src/util/net.cc", R"lint(
#include <sys/socket.h>
int listener()
{
    return socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
}
int peer(int fd)
{
    return accept4(fd, nullptr, nullptr, SOCK_CLOEXEC);
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 0) << run.out;
}

TEST(Lint, Parse1FlagsUncheckedStrtol)
{
    TempTree t("parse1");
    t.write("src/core/num.cc", R"lint(
#include <cstdlib>
long bad(const char *s)
{
    return std::strtol(s, nullptr, 10);
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 1) << run.out;
    EXPECT_EQ(countOccurrences(run.out, "PARSE-1"), 1u) << run.out;
}

TEST(Lint, Parse1AcceptsEndPointerOrErrnoChecks)
{
    TempTree t("parse1ok");
    t.write("src/core/num.cc", R"lint(
#include <cerrno>
#include <cstdlib>
long viaEnd(const char *s)
{
    char *end = nullptr;
    long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0')
        return -1;
    return v;
}
double viaErrno(const char *s)
{
    errno = 0;
    double v = std::strtod(s, nullptr);
    if (errno == ERANGE)
        return -1.0;
    return v;
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 0) << run.out;
}

TEST(Lint, AllowMarkerSuppressesFinding)
{
    TempTree t("allow");
    t.write("src/sim/fixture.cc", R"lint(
#include <cstdlib>
int f()
{
    return rand(); // MCSCOPE_LINT_ALLOW(DET-1): fixture escape test
}
int g()
{
    // MCSCOPE_LINT_ALLOW(DET-1): line-above form
    return rand();
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 0) << run.out;
}

TEST(Lint, BaselineSuppressesListedFinding)
{
    TempTree t("baseline");
    const std::string fixture =
        t.write("src/sim/fixture.cc", "int f()\n"
                                      "{\n"
                                      "    return rand();\n"
                                      "}\n");
    const std::string baseline =
        t.write("baseline.txt",
                "# accepted legacy finding\n" + fixture +
                    ":3:DET-1\n");
    LintRun run = runLint({"--baseline", baseline, t.root()});
    EXPECT_EQ(run.exit, 0) << run.out;

    // Without the baseline the same tree must fail.
    LintRun bare = runLint({t.root()});
    EXPECT_EQ(bare.exit, 1) << bare.out;
}

TEST(Lint, MarkersAndKeywordsInsideLiteralsAreIgnored)
{
    TempTree t("literals");
    t.write("src/sim/strings.cc", R"lint(
const char *doc()
{
    return "call rand() between // MCSCOPE_HOT_BEGIN and new things";
}
)lint");
    LintRun run = runLint({t.root()});
    EXPECT_EQ(run.exit, 0) << run.out;
}

TEST(Lint, ListRulesPrintsCatalog)
{
    LintRun run = runLint({"--list-rules"});
    EXPECT_EQ(run.exit, 0) << run.out;
    for (const char *rule :
         {"DET-1", "DET-2", "HOT-1", "FD-1", "PARSE-1"})
        EXPECT_NE(run.out.find(rule), std::string::npos) << rule;
}

TEST(Lint, UsageErrorsExitTwo)
{
    EXPECT_EQ(runLint({}).exit, 2);
    EXPECT_EQ(runLint({"--no-such-flag", "src"}).exit, 2);
    EXPECT_EQ(runLint({"/no/such/path/anywhere"}).exit, 2);
}

/**
 * The contract the CI lint job enforces: the shipped tree, with the
 * shipped (empty) baseline, has zero findings.
 */
TEST(Lint, LiveTreeIsCleanWithShippedBaseline)
{
    const std::string src = MCSCOPE_SOURCE_DIR;
    LintRun run = runLint(
        {"--baseline", src + "/tools/lint/lint_baseline.txt",
         src + "/src", src + "/tests", src + "/bench",
         src + "/tools"});
    EXPECT_EQ(run.exit, 0) << run.out;
    EXPECT_NE(run.out.find("clean"), std::string::npos) << run.out;
}

} // namespace
} // namespace mcscope
