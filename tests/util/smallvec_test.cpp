/**
 * @file
 * Unit tests for SmallVec, the inline small-vector behind PathVec.
 * The engine copies flow paths on every flow start and allocator
 * rerun, so the inline/heap transition and all five special members
 * must be exactly right.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/smallvec.hh"

namespace mcscope {
namespace {

using Vec = SmallVec<int, 4>;

TEST(SmallVec, StaysInlineUpToCapacity)
{
    Vec v;
    EXPECT_TRUE(v.empty());
    EXPECT_TRUE(v.inlined());
    for (int i = 0; i < 4; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_TRUE(v.inlined());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(v[i], i);
}

TEST(SmallVec, SpillsToHeapBeyondInlineCapacity)
{
    Vec v;
    for (int i = 0; i < 9; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 9u);
    EXPECT_FALSE(v.inlined());
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(v[i], i);
}

TEST(SmallVec, InitializerListAndVectorConversion)
{
    Vec a = {1, 2, 3};
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a[2], 3);

    std::vector<int> source = {4, 5, 6, 7, 8};
    Vec b = source;
    EXPECT_EQ(b.size(), 5u);
    EXPECT_FALSE(b.inlined());
    EXPECT_EQ(b[4], 8);

    a = {9};
    EXPECT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0], 9);
}

TEST(SmallVec, CopySemantics)
{
    Vec inline_src = {1, 2};
    Vec inline_dst(inline_src);
    EXPECT_EQ(inline_dst, inline_src);
    inline_src.push_back(3);
    EXPECT_EQ(inline_dst.size(), 2u); // deep copy

    Vec heap_src;
    for (int i = 0; i < 8; ++i)
        heap_src.push_back(i);
    Vec heap_dst;
    heap_dst = heap_src;
    EXPECT_EQ(heap_dst, heap_src);
    heap_src[0] = 99;
    EXPECT_EQ(heap_dst[0], 0);

    // Self-assignment is a no-op.
    Vec &alias = heap_dst;
    heap_dst = alias;
    EXPECT_EQ(heap_dst.size(), 8u);
}

TEST(SmallVec, MoveStealsHeapBufferAndCopiesInline)
{
    Vec heap_src;
    for (int i = 0; i < 8; ++i)
        heap_src.push_back(i);
    const int *buf = heap_src.data();
    Vec stolen(std::move(heap_src));
    EXPECT_EQ(stolen.data(), buf); // heap buffer stolen, not copied
    EXPECT_EQ(stolen.size(), 8u);
    EXPECT_TRUE(heap_src.empty());   // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(heap_src.inlined()); // source reset to inline storage

    Vec inline_src = {1, 2, 3};
    Vec moved;
    moved = std::move(inline_src);
    EXPECT_EQ(moved.size(), 3u);
    EXPECT_TRUE(moved.inlined());
    EXPECT_EQ(moved[1], 2);
}

TEST(SmallVec, MoveAssignReleasesDestinationHeap)
{
    Vec dst;
    for (int i = 0; i < 16; ++i)
        dst.push_back(i);
    Vec src = {7};
    dst = std::move(src);
    EXPECT_EQ(dst.size(), 1u);
    EXPECT_EQ(dst[0], 7);
    EXPECT_TRUE(dst.inlined());
}

TEST(SmallVec, ClearKeepsCapacity)
{
    Vec v;
    for (int i = 0; i < 10; ++i)
        v.push_back(i);
    const size_t cap = v.capacity();
    v.clear();
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.capacity(), cap);
    v.push_back(42);
    EXPECT_EQ(v.front(), 42);
    EXPECT_EQ(v.back(), 42);
}

TEST(SmallVec, EqualityComparesElements)
{
    Vec a = {1, 2, 3};
    Vec b = {1, 2, 3};
    Vec c = {1, 2};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(SmallVec, RangeForAndIterators)
{
    Vec v = {2, 4, 6};
    int sum = 0;
    for (int x : v)
        sum += x;
    EXPECT_EQ(sum, 12);
    const Vec &cv = v;
    EXPECT_EQ(cv.end() - cv.begin(), 3);
}

} // namespace
} // namespace mcscope
