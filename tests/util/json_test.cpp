/**
 * @file
 * util/json.hh: parser, serializer, and round-trip behavior the
 * scenario pipeline depends on (canonical key ordering, exact double
 * round-trips, strict trailing-garbage rejection).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "util/json.hh"
#include "util/rng.hh"

using namespace mcscope;

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null")->isNull());
    EXPECT_TRUE(parseJson("true")->asBool());
    EXPECT_FALSE(parseJson("false")->asBool());
    EXPECT_DOUBLE_EQ(parseJson("42")->asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parseJson("-1.5e3")->asNumber(), -1500.0);
    EXPECT_EQ(parseJson("\"hi\"")->asString(), "hi");
}

TEST(Json, ParsesNested)
{
    auto doc = parseJson(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
    ASSERT_TRUE(doc.has_value());
    const JsonValue *a = doc->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[0].asNumber(), 1.0);
    ASSERT_NE(a->items()[2].find("b"), nullptr);
    EXPECT_EQ(a->items()[2].find("b")->asString(), "c");
    EXPECT_TRUE(doc->find("d")->isObject());
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, StringEscapes)
{
    auto doc = parseJson(R"("a\"b\\c\n\tA")");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->asString(), "a\"b\\c\n\tA");

    // Serialization escapes what JSON requires and round-trips.
    JsonValue v = JsonValue::str("x\"\\\n\x01y");
    auto back = parseJson(v.dump());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->asString(), "x\"\\\n\x01y");
}

TEST(Json, RejectsMalformed)
{
    std::string err;
    EXPECT_FALSE(parseJson("", &err).has_value());
    EXPECT_FALSE(parseJson("{", &err).has_value());
    EXPECT_FALSE(parseJson("[1,]", &err).has_value());
    EXPECT_FALSE(parseJson("{\"a\" 1}", &err).has_value());
    EXPECT_FALSE(parseJson("nul", &err).has_value());
    EXPECT_FALSE(parseJson("\"unterminated", &err).has_value());
    EXPECT_FALSE(err.empty());
}

TEST(Json, RejectsOutOfRangeNumbers)
{
    // strtod turns "1e999" into HUGE_VAL and only reports it via
    // errno; without the check the infinity flowed straight into
    // result digests.  Overflow is rejected...
    std::string err;
    EXPECT_FALSE(parseJson("1e999", &err).has_value());
    EXPECT_NE(err.find("out of double range"), std::string::npos)
        << err;
    EXPECT_FALSE(parseJson("-1e999").has_value());
    EXPECT_FALSE(parseJson("1e309").has_value());
    EXPECT_FALSE(parseJson("{\"seconds\": 2e308}").has_value());

    // ...but gradual underflow is not an error: "1e-999" reads as a
    // (de)normalized ~0, which is a representable, honest value.
    auto tiny = parseJson("1e-999");
    ASSERT_TRUE(tiny.has_value());
    EXPECT_EQ(tiny->asNumber(), 0.0);
    auto large = parseJson("1e308");
    ASSERT_TRUE(large.has_value());
    EXPECT_DOUBLE_EQ(large->asNumber(), 1e308);
}

TEST(Json, RejectsTrailingGarbage)
{
    // A truncated-then-concatenated cache file must not parse.
    EXPECT_FALSE(parseJson("{} {}").has_value());
    EXPECT_FALSE(parseJson("1 2").has_value());
    EXPECT_TRUE(parseJson("  {}  ").has_value());
}

TEST(Json, RejectsRunawayDepth)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    EXPECT_FALSE(parseJson(deep).has_value());
}

TEST(Json, DoublesRoundTripExactly)
{
    // The result cache stores simulated seconds as JSON numbers; a
    // cache hit must reproduce them bit-for-bit.
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        double v = rng.uniform(-1e6, 1e6) *
                   std::pow(10.0, static_cast<double>(rng.below(13)) - 6);
        auto parsed = parseJson(JsonValue::number(v).dump());
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->asNumber(), v) << "value " << v;
    }
}

// The historical number serialization: "%.0f" for integral values,
// otherwise the first precision in 9..17 whose "%.*g" output reparses
// to the same bits.  Scenario digests hash the serialized text, so
// the production formatter (now a single to_chars-bounded snprintf)
// must stay byte-identical to this forever.
static std::string
referenceNumberText(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    for (int prec = 9; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        // Round-trip check against our own snprintf output.
        // MCSCOPE_LINT_ALLOW(PARSE-1)
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

TEST(Json, NumberTextMatchesHistoricalFormatting)
{
    // Directed values that straddle every branch: integral, -0.0,
    // short decimals, full-precision ties, subnormals, and the 1e15
    // integral cutoff.
    const double directed[] = {0.0,     -0.0,    1.0,     -5.0,
                               1e15,    -1e15,   9.99e14, 0.1,
                               1.0 / 3, 1.2e-7,  2.66e9,  1e300,
                               5e-324,  1e-308,  0.3,     1024.5,
                               1e15 + 2.0,       123456.789};
    for (double v : directed)
        EXPECT_EQ(JsonValue::number(v).dump(), referenceNumberText(v))
            << "value " << v;

    // Fuzz with random bit patterns (finite ones) and random decimal
    // magnitudes; any divergence here silently moves every scenario
    // digest, so this is load-bearing, not belt-and-braces.
    Rng rng(0x5eedf00dULL);
    for (int i = 0; i < 20000; ++i) {
        uint64_t bits = rng.next();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        if (!std::isfinite(v))
            continue;
        ASSERT_EQ(JsonValue::number(v).dump(), referenceNumberText(v))
            << "bits " << bits;
    }
    for (int i = 0; i < 20000; ++i) {
        double v = rng.uniform(-1e6, 1e6) *
                   std::pow(10.0, static_cast<double>(rng.below(25)) - 12);
        ASSERT_EQ(JsonValue::number(v).dump(), referenceNumberText(v))
            << "value " << v;
    }
}

TEST(Json, SortedKeysAreCanonical)
{
    JsonValue a = JsonValue::object();
    a.set("z", JsonValue::number(1));
    a.set("a", JsonValue::number(2));
    JsonValue b = JsonValue::object();
    b.set("a", JsonValue::number(2));
    b.set("z", JsonValue::number(1));
    // Insertion order differs...
    EXPECT_NE(a.dump(), b.dump());
    // ...but the canonical form does not.
    EXPECT_EQ(a.dump(-1, true), b.dump(-1, true));
}

TEST(Json, SetReplacesExistingKey)
{
    JsonValue o = JsonValue::object();
    o.set("k", JsonValue::number(1));
    o.set("k", JsonValue::number(2));
    ASSERT_EQ(o.members().size(), 1u);
    EXPECT_DOUBLE_EQ(o.find("k")->asNumber(), 2.0);
}
