/**
 * @file
 * Unit tests for the utility layer: strings, tables, CSV, RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/csv.hh"
#include "util/rng.hh"
#include "util/str.hh"
#include "util/table.hh"

namespace mcscope {
namespace {

TEST(Str, Split)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a,,c", ','),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Str, TrimAndLower)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("\t\nx\r "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(toLower("LoNgS"), "longs");
}

TEST(Str, Join)
{
    EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
    EXPECT_EQ(join({}, ","), "");
}

TEST(Str, Formatters)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(16384), "16KB");
    EXPECT_EQ(formatBytes(1536), "1.5KB");
    EXPECT_EQ(formatBytes(3.0 * 1024 * 1024), "3MB");
    EXPECT_EQ(formatGiBps(2.5e9), "2.50 GB/s");
    EXPECT_TRUE(startsWith("nas-cg", "nas"));
    EXPECT_FALSE(startsWith("na", "nas"));
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t({"A", "Name"});
    t.addRow({"1", "x"});
    t.addRow({"22", "longer"});
    std::string s = t.str();
    EXPECT_NE(s.find("A  | Name"), std::string::npos);
    EXPECT_NE(s.find("22 | longer"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, SeparatorAndCellHelpers)
{
    TextTable t({"h"});
    t.addRow({"r1"});
    t.addSeparator();
    t.addRow({"r2"});
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(cell(1.23456, 2), "1.23");
    EXPECT_EQ(cell(std::nan("")), "-");
}

TEST(Csv, QuotingRules)
{
    EXPECT_EQ(CsvWriter::quote("plain"), "plain");
    EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    w.writeRow({"a", "b,c"});
    w.writeNumericRow({1.5, 2.0});
    EXPECT_EQ(oss.str(), "a,\"b,c\"\n1.5,2\n");
    EXPECT_EQ(w.rowsWritten(), 2u);
}

TEST(Csv, NonFiniteNumbersBecomeEmptyCells)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    const double inf = std::numeric_limits<double>::infinity();
    w.writeNumericRow({std::nan(""), 1.0, inf, -inf});
    w.writeNumericRow({std::nan("")});
    // Bare "nan"/"inf" tokens would poison downstream readers; the
    // cells must be empty instead.
    EXPECT_EQ(oss.str(), ",1,,\n\n");
    EXPECT_EQ(w.rowsWritten(), 2u);
}

TEST(Rng, DeterministicAndUniform)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());

    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowAndGaussian)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(10), 10u);
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < 5000; ++i) {
        double g = r.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / 5000.0, 0.0, 0.05);
    EXPECT_NEAR(sq / 5000.0, 1.0, 0.1);
}

} // namespace
} // namespace mcscope
