/**
 * @file
 * Coverage for the smaller utility and task pieces: logging levels,
 * primitive names, task sequencing edge cases, and CLI CSV output.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/cli.hh"
#include "sim/engine.hh"
#include "sim/task.hh"
#include "util/logging.hh"

namespace mcscope {
namespace {

TEST(Logging, LevelsGate)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    // These must not crash at any level; output goes to stderr.
    inform("informational ", 42);
    warn("warning ", 3.14);
    debugLog("debug detail");
    setLogLevel(LogLevel::Quiet);
    inform("suppressed");
    setLogLevel(before);
}

TEST(LoggingDeath, PanicAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_DEATH({ MCSCOPE_PANIC("boom ", 7); }, "boom 7");
    ASSERT_DEATH({ MCSCOPE_ASSERT(1 == 2, "math broke"); },
                 "math broke");
}

TEST(LoggingDeath, FatalExitsCleanly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_EXIT({ fatal("user error"); },
                ::testing::ExitedWithCode(1), "user error");
}

TEST(Prims, KindNames)
{
    EXPECT_EQ(primKindName(Work{}), "Work");
    EXPECT_EQ(primKindName(Delay{}), "Delay");
    EXPECT_EQ(primKindName(Rendezvous{}), "Rendezvous");
    EXPECT_EQ(primKindName(SyncAll{}), "SyncAll");
}

TEST(Tasks, SequenceTaskExhausts)
{
    SequenceTask t("seq", {Delay{0.5, 0}, Delay{0.25, 0}});
    EXPECT_TRUE(t.next().has_value());
    EXPECT_TRUE(t.next().has_value());
    EXPECT_FALSE(t.next().has_value());
    EXPECT_EQ(t.name(), "seq");
}

TEST(Tasks, LoopTaskEpilogueRuns)
{
    Engine e;
    ResourceId r = e.addResource("r", 1.0);
    Work w;
    w.amount = 1.0;
    w.path = {r};
    Work epi;
    epi.amount = 3.0;
    epi.path = {r};
    e.addTask(std::make_unique<LoopTask>(
        "loop", std::vector<Prim>{w} /* prologue */,
        std::vector<Prim>{w}, 2, std::vector<Prim>{epi}));
    e.run();
    // prologue 1 + 2 iterations + epilogue 3 = 6 units at 1/s.
    EXPECT_NEAR(e.makespan(), 6.0, 1e-9);
}

TEST(Tasks, LoopTaskZeroIterations)
{
    Engine e;
    ResourceId r = e.addResource("r", 1.0);
    Work w;
    w.amount = 2.0;
    w.path = {r};
    e.addTask(std::make_unique<LoopTask>(
        "empty", std::vector<Prim>{w}, std::vector<Prim>{}, 5));
    e.run();
    // Empty body: only the prologue runs.
    EXPECT_NEAR(e.makespan(), 2.0, 1e-9);
}

TEST(Cli, SweepCsvIsParseable)
{
    std::ostringstream oss;
    int rc = runCli({"sweep", "stream", "--machine", "dmz", "--ranks",
                     "2,4", "--csv"},
                    oss);
    EXPECT_EQ(rc, 0);
    std::string out = oss.str();
    // Header + two data rows.
    size_t lines = 0;
    for (char c : out)
        lines += c == '\n';
    EXPECT_EQ(lines, 3u);
    EXPECT_NE(out.find("ranks,Default"), std::string::npos);
    // Infeasible cells are empty, not "-" (machine readability).
    EXPECT_NE(out.find(",,"), std::string::npos);
}

} // namespace
} // namespace mcscope
