/**
 * Framed transport (util/transport.hh): round trips over pipes and
 * loopback TCP, incremental decoding, and rejection of truncated,
 * oversized, and garbage streams.
 */

#include "util/transport.hh"

#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

namespace mcscope {
namespace {

/** A pipe pair that closes whatever is still open at scope exit. */
struct Pipe
{
    int fds[2] = {-1, -1};

    Pipe() { EXPECT_EQ(::pipe2(fds, O_CLOEXEC), 0); }
    ~Pipe()
    {
        closeRead();
        closeWrite();
    }
    void closeRead()
    {
        if (fds[0] >= 0) {
            ::close(fds[0]);
            fds[0] = -1;
        }
    }
    void closeWrite()
    {
        if (fds[1] >= 0) {
            ::close(fds[1]);
            fds[1] = -1;
        }
    }
    int readFd() const { return fds[0]; }
    int writeFd() const { return fds[1]; }
};

std::string
encodePrefix(uint32_t len)
{
    std::string out(4, '\0');
    out[0] = static_cast<char>((len >> 24) & 0xff);
    out[1] = static_cast<char>((len >> 16) & 0xff);
    out[2] = static_cast<char>((len >> 8) & 0xff);
    out[3] = static_cast<char>(len & 0xff);
    return out;
}

TEST(TransportTest, FrameRoundTripOverPipe)
{
    Pipe p;
    const std::vector<std::string> payloads = {
        "", "x", "{\"index\": 3}", std::string(100000, 'a')};
    // The 100 kB payload exceeds the default pipe capacity, so the
    // writer must run concurrently with the reader below (this also
    // exercises writeAllFd's short-write loop for real).
    std::thread writer([&] {
        for (const std::string &payload : payloads)
            EXPECT_TRUE(writeFrame(p.writeFd(), payload));
        p.closeWrite();
    });
    for (const std::string &payload : payloads) {
        bool eof = true;
        std::optional<std::string> got = readFrame(p.readFd(), &eof);
        ASSERT_TRUE(got.has_value());
        EXPECT_FALSE(eof);
        EXPECT_EQ(*got, payload);
    }
    bool eof = false;
    EXPECT_FALSE(readFrame(p.readFd(), &eof).has_value());
    EXPECT_TRUE(eof) << "EOF at a frame boundary must be clean";
    writer.join();
}

TEST(TransportTest, TruncatedFrameIsNotCleanEof)
{
    Pipe p;
    // A full prefix promising 100 bytes, then only 3.
    std::string bytes = encodePrefix(100) + "abc";
    ASSERT_EQ(::write(p.writeFd(), bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
    p.closeWrite();
    bool eof = true;
    EXPECT_FALSE(readFrame(p.readFd(), &eof).has_value());
    EXPECT_FALSE(eof) << "a torn frame is a dirty stream, not EOF";
}

TEST(TransportTest, TruncatedPrefixIsNotCleanEof)
{
    Pipe p;
    ASSERT_EQ(::write(p.writeFd(), "\x00\x00", 2), 2);
    p.closeWrite();
    bool eof = true;
    EXPECT_FALSE(readFrame(p.readFd(), &eof).has_value());
    EXPECT_FALSE(eof);
}

TEST(TransportTest, OversizedPrefixRejected)
{
    Pipe p;
    std::string bytes =
        encodePrefix(static_cast<uint32_t>(kMaxFrameBytes) + 1);
    ASSERT_EQ(::write(p.writeFd(), bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
    p.closeWrite();
    bool eof = true;
    EXPECT_FALSE(readFrame(p.readFd(), &eof).has_value());
    EXPECT_FALSE(eof);
}

TEST(TransportTest, WriteFrameRejectsOversizedPayload)
{
    Pipe p;
    // Never allocates the jumbo buffer: the size check runs first, so
    // construct a string of the right *reported* size cheaply is not
    // possible -- use a real one just over the cap only if the cap is
    // small.  kMaxFrameBytes is 64 MiB; building 64 MiB + 1 once in a
    // test is acceptable and proves the boundary exactly.
    std::string jumbo(kMaxFrameBytes + 1, 'x');
    EXPECT_FALSE(writeFrame(p.writeFd(), jumbo));
    EXPECT_EQ(errno, EMSGSIZE);
}

TEST(TransportTest, FrameBufferIncrementalDecode)
{
    FrameBuffer fb;
    std::string stream;
    const std::vector<std::string> payloads = {"alpha", "", "gamma"};
    for (const std::string &p : payloads)
        stream += encodePrefix(static_cast<uint32_t>(p.size())) + p;
    // Feed one byte at a time; frames must pop exactly at boundaries.
    std::vector<std::string> got;
    for (char c : stream) {
        fb.append(&c, 1);
        while (std::optional<std::string> f = fb.next())
            got.push_back(*f);
    }
    EXPECT_EQ(got, payloads);
    EXPECT_FALSE(fb.malformed());
    EXPECT_EQ(fb.pending(), 0u);
}

TEST(TransportTest, FrameBufferPoisonsPermanentlyOnOversizedPrefix)
{
    FrameBuffer fb;
    std::string bad =
        encodePrefix(static_cast<uint32_t>(kMaxFrameBytes) + 7);
    fb.append(bad.data(), bad.size());
    EXPECT_FALSE(fb.next().has_value());
    EXPECT_TRUE(fb.malformed());
    EXPECT_EQ(fb.pending(), 0u) << "poisoned buffer must not hoard";
    // A valid frame appended afterwards must never surface.
    std::string good = encodePrefix(2) + "ok";
    fb.append(good.data(), good.size());
    EXPECT_FALSE(fb.next().has_value());
    EXPECT_TRUE(fb.malformed());
}

TEST(TransportTest, FrameBufferGarbageFuzz)
{
    // Deterministic garbage: whatever happens, next() must never
    // return a frame longer than the cap and never crash.
    std::mt19937 rng(0xC0FFEE);
    for (int round = 0; round < 50; ++round) {
        FrameBuffer fb;
        std::string garbage(1 + rng() % 4096, '\0');
        for (char &c : garbage)
            c = static_cast<char>(rng() & 0xff);
        fb.append(garbage.data(), garbage.size());
        while (std::optional<std::string> f = fb.next())
            EXPECT_LE(f->size(), kMaxFrameBytes);
        if (fb.malformed()) {
            EXPECT_EQ(fb.pending(), 0u);
        }
    }
}

TEST(TransportTest, TcpLoopbackRoundTrip)
{
    std::string error;
    std::optional<TcpListener> listener =
        tcpListen("127.0.0.1", 0, &error);
    ASSERT_TRUE(listener.has_value()) << error;
    ASSERT_GT(listener->port, 0);

    std::thread client([&] {
        std::string connect_error;
        int fd =
            tcpConnect("127.0.0.1", listener->port, &connect_error);
        ASSERT_GE(fd, 0) << connect_error;
        EXPECT_TRUE(writeFrame(fd, "ping"));
        std::optional<std::string> reply = readFrame(fd);
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(*reply, "pong");
        ::close(fd);
    });

    int conn = tcpAccept(listener->fd);
    ASSERT_GE(conn, 0);
    std::optional<std::string> got = readFrame(conn);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "ping");
    EXPECT_TRUE(writeFrame(conn, "pong"));
    // Peer closes; the next read is a clean EOF.
    client.join();
    bool eof = false;
    EXPECT_FALSE(readFrame(conn, &eof).has_value());
    EXPECT_TRUE(eof);
    ::close(conn);
    ::close(listener->fd);
}

TEST(TransportTest, AcceptedSocketsCarryCloexec)
{
    std::string error;
    std::optional<TcpListener> listener =
        tcpListen("127.0.0.1", 0, &error);
    ASSERT_TRUE(listener.has_value()) << error;
    EXPECT_NE(::fcntl(listener->fd, F_GETFD) & FD_CLOEXEC, 0);

    std::thread client([&] {
        int fd = tcpConnect("127.0.0.1", listener->port);
        ASSERT_GE(fd, 0);
        EXPECT_NE(::fcntl(fd, F_GETFD) & FD_CLOEXEC, 0);
        ::close(fd);
    });
    int conn = tcpAccept(listener->fd);
    ASSERT_GE(conn, 0);
    EXPECT_NE(::fcntl(conn, F_GETFD) & FD_CLOEXEC, 0);
    client.join();
    ::close(conn);
    ::close(listener->fd);
}

TEST(TransportTest, SplitHostPort)
{
    std::string host;
    int port = 0;
    EXPECT_TRUE(splitHostPort("127.0.0.1:8080", &host, &port));
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 8080);
    EXPECT_TRUE(splitHostPort("::1:443", &host, &port));
    EXPECT_EQ(host, "::1");
    EXPECT_EQ(port, 443);
    EXPECT_FALSE(splitHostPort("nohost", &host, &port));
    EXPECT_FALSE(splitHostPort(":1234", &host, &port));
    EXPECT_FALSE(splitHostPort("host:", &host, &port));
    EXPECT_FALSE(splitHostPort("host:0", &host, &port));
    EXPECT_FALSE(splitHostPort("host:65536", &host, &port));
    EXPECT_FALSE(splitHostPort("host:12x4", &host, &port));
}

} // namespace
} // namespace mcscope
