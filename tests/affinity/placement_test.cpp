/**
 * @file
 * Unit tests for placement: Table 5 option semantics, preferred
 * socket ordering, memory spreads per policy, membind mis-binding,
 * and the invalid-combination "-" cells.
 */

#include <gtest/gtest.h>

#include "affinity/cpuset.hh"
#include "affinity/placement.hh"
#include "machine/config.hh"
#include "machine/topology.hh"

namespace mcscope {
namespace {

class PlacementTest : public ::testing::Test
{
  protected:
    MachineConfig longs_ = longsConfig();
    Topology longsTopo_{8, ladderLinks(4)};
    MachineConfig dmz_ = dmzConfig();
    Topology dmzTopo_{2, {{0, 1}}};
};

TEST_F(PlacementTest, Table5HasSixOptionsInPaperOrder)
{
    auto opts = table5Options();
    ASSERT_EQ(opts.size(), 6u);
    EXPECT_EQ(opts[0].label, "Default");
    EXPECT_EQ(opts[1].label, "One MPI + Local Alloc");
    EXPECT_EQ(opts[2].label, "One MPI + Membind");
    EXPECT_EQ(opts[3].label, "Two MPI + Local Alloc");
    EXPECT_EQ(opts[4].label, "Two MPI + Membind");
    EXPECT_EQ(opts[5].label, "Interleave");
}

TEST_F(PlacementTest, PreferredOrderStartsCentral)
{
    auto order = preferredSocketOrder(longsTopo_);
    ASSERT_EQ(order.size(), 8u);
    // The first four sockets picked must form a low-hop cluster: every
    // pair within 2 hops.
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_LE(longsTopo_.hopCount(order[i], order[j]), 2);
    // All sockets appear exactly once.
    std::vector<bool> seen(8, false);
    for (int s : order) {
        EXPECT_FALSE(seen[s]);
        seen[s] = true;
    }
}

TEST_F(PlacementTest, OnePerSocketRejectsTooManyRanks)
{
    NumactlOption one = table5Options()[1];
    EXPECT_TRUE(Placement::create(longs_, longsTopo_, one, 8)
                    .has_value());
    // The paper's Table 2 has "-" for One MPI at 16 tasks.
    EXPECT_FALSE(Placement::create(longs_, longsTopo_, one, 16)
                     .has_value());
    // And Table 3 has "-" for One MPI at 4 tasks on DMZ.
    EXPECT_FALSE(Placement::create(dmz_, dmzTopo_, one, 4).has_value());
}

TEST_F(PlacementTest, OnePerSocketUsesDistinctSockets)
{
    NumactlOption one = table5Options()[1];
    auto p = Placement::create(longs_, longsTopo_, one, 8);
    ASSERT_TRUE(p.has_value());
    std::vector<bool> used(8, false);
    for (int r = 0; r < 8; ++r) {
        int socket = p->binding(r).core / longs_.coresPerSocket;
        EXPECT_FALSE(used[socket]);
        used[socket] = true;
        EXPECT_TRUE(p->binding(r).pinned);
    }
}

TEST_F(PlacementTest, TwoPerSocketPacksPairs)
{
    NumactlOption two = table5Options()[3];
    auto p = Placement::create(longs_, longsTopo_, two, 8);
    ASSERT_TRUE(p.has_value());
    for (int r = 0; r < 8; r += 2) {
        int s0 = p->binding(r).core / 2;
        int s1 = p->binding(r + 1).core / 2;
        EXPECT_EQ(s0, s1) << "ranks " << r << "," << r + 1;
        EXPECT_NE(p->binding(r).core, p->binding(r + 1).core);
    }
}

TEST_F(PlacementTest, LocalAllocSpreadIsFullyLocal)
{
    NumactlOption one = table5Options()[1];
    auto p = Placement::create(longs_, longsTopo_, one, 4);
    ASSERT_TRUE(p.has_value());
    for (int r = 0; r < 4; ++r) {
        auto spread = p->memorySpread(r);
        ASSERT_EQ(spread.size(), 1u);
        EXPECT_EQ(spread[0].node,
                  p->binding(r).core / longs_.coresPerSocket);
        EXPECT_DOUBLE_EQ(spread[0].fraction, 1.0);
    }
}

TEST_F(PlacementTest, InterleaveSpreadCoversAllNodesEvenly)
{
    NumactlOption il = table5Options()[5];
    auto p = Placement::create(longs_, longsTopo_, il, 4);
    ASSERT_TRUE(p.has_value());
    auto spread = p->memorySpread(0);
    ASSERT_EQ(spread.size(), 8u);
    double sum = 0.0;
    for (const auto &nf : spread) {
        EXPECT_DOUBLE_EQ(nf.fraction, 1.0 / 8.0);
        sum += nf.fraction;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST_F(PlacementTest, DefaultSpreadSumsToOne)
{
    NumactlOption def = table5Options()[0];
    auto p = Placement::create(longs_, longsTopo_, def, 4);
    ASSERT_TRUE(p.has_value());
    auto spread = p->memorySpread(0);
    double sum = 0.0;
    for (const auto &nf : spread)
        sum += nf.fraction;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Partial load => drift => more than one node touched.
    EXPECT_GT(spread.size(), 1u);
}

TEST_F(PlacementTest, DefaultAtFullLoadStaysLocal)
{
    NumactlOption def = table5Options()[0];
    auto p = Placement::create(longs_, longsTopo_, def, 16);
    ASSERT_TRUE(p.has_value());
    // Full machine: no idle socket to drift toward.
    EXPECT_EQ(p->memorySpread(0).size(), 1u);
}

TEST_F(PlacementTest, MembindLocalAtTwoRanks)
{
    NumactlOption mb = table5Options()[2];
    auto p = Placement::create(longs_, longsTopo_, mb, 2);
    ASSERT_TRUE(p.has_value());
    // Both ranks bind locally: Table 2's membind/localalloc parity
    // at 2 tasks.
    for (int r = 0; r < 2; ++r) {
        int s = p->binding(r).core / 2;
        EXPECT_EQ(p->memorySpread(r)[0].node, s);
    }
}

TEST_F(PlacementTest, MembindMostlyRemoteAtEightRanks)
{
    NumactlOption mb = table5Options()[2];
    auto p = Placement::create(longs_, longsTopo_, mb, 8);
    ASSERT_TRUE(p.has_value());
    double total_hops = 0.0;
    for (int r = 0; r < 8; ++r) {
        int socket = p->binding(r).core / 2;
        total_hops += longsTopo_.hopCount(
            socket, p->memorySpread(r)[0].node);
    }
    // The Table 2 pathology: most ranks bound off-socket.
    EXPECT_GE(total_hops / 8.0, 1.0);
    EXPECT_LE(total_hops / 8.0, 2.0);
}

TEST_F(PlacementTest, MembindCommBuffersCongestNodeZero)
{
    NumactlOption mb = table5Options()[2];
    auto p = Placement::create(dmz_, dmzTopo_, mb, 2);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->commBufferNode(0), 0);
    EXPECT_EQ(p->commBufferNode(1), 0);

    NumactlOption la = table5Options()[1];
    auto q = Placement::create(dmz_, dmzTopo_, la, 2);
    ASSERT_TRUE(q.has_value());
    EXPECT_NE(q->commBufferNode(0), q->commBufferNode(1));
}

TEST_F(PlacementTest, RejectsMoreRanksThanCores)
{
    NumactlOption def = table5Options()[0];
    EXPECT_FALSE(
        Placement::create(dmz_, dmzTopo_, def, 5).has_value());
}

TEST(CpuSet, BasicOperations)
{
    CpuSet s;
    EXPECT_TRUE(s.empty());
    s.add(0);
    s.add(2);
    s.add(3);
    EXPECT_EQ(s.count(), 3);
    EXPECT_TRUE(s.contains(2));
    EXPECT_FALSE(s.contains(1));
    EXPECT_EQ(s.str(), "0,2-3");
    EXPECT_EQ(CpuSet::range(4).count(), 4);
    EXPECT_EQ(CpuSet::single(5).toVector(),
              std::vector<int>{5});
}

} // namespace
} // namespace mcscope
