/**
 * @file
 * Unit tests for machine configuration presets, the cache model, and
 * the Machine resource-geometry helpers.
 */

#include <gtest/gtest.h>

#include "machine/cache.hh"
#include "machine/config.hh"
#include "machine/machine.hh"

namespace mcscope {
namespace {

TEST(Config, PresetsMatchTable1)
{
    MachineConfig tiger = tigerConfig();
    EXPECT_EQ(tiger.sockets, 2);
    EXPECT_EQ(tiger.coresPerSocket, 1);
    EXPECT_DOUBLE_EQ(tiger.coreGHz, 2.2);
    EXPECT_EQ(tiger.totalCores(), 2);

    MachineConfig dmz = dmzConfig();
    EXPECT_EQ(dmz.sockets, 2);
    EXPECT_EQ(dmz.coresPerSocket, 2);
    EXPECT_EQ(dmz.totalCores(), 4);

    MachineConfig longs = longsConfig();
    EXPECT_EQ(longs.sockets, 8);
    EXPECT_EQ(longs.coresPerSocket, 2);
    EXPECT_DOUBLE_EQ(longs.coreGHz, 1.8);
    EXPECT_EQ(longs.totalCores(), 16);
    EXPECT_EQ(longs.htLinks.size(), 10u);
}

TEST(Config, ByNameIsCaseInsensitive)
{
    EXPECT_EQ(configByName("LONGS").name, "Longs");
    EXPECT_EQ(configByName("dmz").name, "DMZ");
}

TEST(Config, CoherenceTaxHalvesLongsBandwidth)
{
    // The paper's Section 3.3 observation: the best achievable
    // single-core bandwidth on the 8-socket system is less than half
    // the >4 GB/s expected from an Opteron.
    MachineConfig longs = longsConfig();
    EXPECT_LT(longs.effectiveMemBandwidth(),
              0.5 * longs.memBandwidthPerSocket);
    MachineConfig dmz = dmzConfig();
    EXPECT_GT(dmz.effectiveMemBandwidth(),
              0.8 * dmz.memBandwidthPerSocket);
}

TEST(Cache, MissFractionMonotoneInWorkingSet)
{
    double c = 1024.0 * 1024.0;
    double prev = 0.0;
    for (double ws = c / 64.0; ws <= 64.0 * c; ws *= 2.0) {
        double f = cacheMissFraction(ws, c);
        EXPECT_GE(f, prev);
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
        prev = f;
    }
    EXPECT_LT(cacheMissFraction(c / 16.0, c), 0.1);
    EXPECT_GT(cacheMissFraction(16.0 * c, c), 0.9);
    EXPECT_NEAR(cacheMissFraction(c, c), 0.5, 0.05);
}

TEST(Cache, ResidencyBoostBounded)
{
    double c = 1024.0 * 1024.0;
    EXPECT_NEAR(cacheResidencyBoost(c / 100.0, c, 0.4), 1.4, 0.02);
    EXPECT_NEAR(cacheResidencyBoost(100.0 * c, c, 0.4), 1.0, 0.02);
}

TEST(Machine, CoreAndSocketGeometry)
{
    Machine m(longsConfig());
    EXPECT_EQ(m.totalCores(), 16);
    EXPECT_EQ(m.socketOf(0), 0);
    EXPECT_EQ(m.socketOf(1), 0);
    EXPECT_EQ(m.socketOf(2), 1);
    EXPECT_EQ(m.socketOf(15), 7);
}

TEST(Machine, MemoryLatencyGrowsWithHops)
{
    Machine m(longsConfig());
    SimTime prev = 0.0;
    for (int hops_target : {0, 1, 4}) {
        // Find a node at that distance from socket 0.
        for (int n = 0; n < 8; ++n) {
            if (m.topology().hopCount(0, n) == hops_target) {
                SimTime lat = m.memoryLatency(0, n);
                EXPECT_GT(lat, prev);
                prev = lat;
                break;
            }
        }
    }
}

TEST(Machine, StreamRateCapDropsWithDistance)
{
    Machine m(longsConfig());
    double local = m.streamRateCap(0, 0);
    double far = m.streamRateCap(0, 7);
    EXPECT_GT(local, far);
    EXPECT_GT(local / far, 2.0);
}

TEST(Machine, MemoryWorkPathTouchesControllerAndLinks)
{
    Machine m(longsConfig());
    auto works = m.memoryWorks(/*core=*/0, /*node=*/3, 1000.0);
    ASSERT_EQ(works.size(), 1u);
    // Controller + 3 hops of links.
    EXPECT_EQ(works[0].path.size(), 4u);
    EXPECT_DOUBLE_EQ(works[0].amount, 1000.0);
}

TEST(Machine, MultiNodeSpreadSplitsBytes)
{
    Machine m(dmzConfig());
    auto works =
        m.memoryWorks(0, {{0, 0.75}, {1, 0.25}}, 1000.0);
    ASSERT_EQ(works.size(), 2u);
    EXPECT_DOUBLE_EQ(works[0].amount + works[1].amount, 1000.0);
}

TEST(Machine, SameDieTransferFasterThanCrossSocket)
{
    Machine m(dmzConfig());
    Work same = m.transferWork(0, 1, 0, 1000.0);
    Work cross = m.transferWork(0, 2, 0, 1000.0);
    EXPECT_GT(same.rateCap, cross.rateCap);
    // Cross-socket transfer path includes HT links.
    EXPECT_GT(cross.path.size(), same.path.size());
}

TEST(Machine, ComputeWorkScalesWithEfficiency)
{
    Machine m(dmzConfig());
    Work full = m.computeWork(0, 1000.0, 1.0);
    Work half = m.computeWork(0, 1000.0, 0.5);
    EXPECT_DOUBLE_EQ(half.amount, 2.0 * full.amount);
}

} // namespace
} // namespace mcscope
