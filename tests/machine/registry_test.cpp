/**
 * @file
 * Machine-registry tests: the digest-preservation contract for the
 * 2006 presets (pinned digests + a randomized preset-vs-inline
 * differential), the JSON definition loader (round-trips and every
 * class of malformed file), and the registry name table the CLI and
 * spec parsers resolve through.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

#include "affinity/placement.hh"
#include "core/plan.hh"
#include "core/scenario.hh"
#include "machine/registry.hh"
#include "machine/serialize.hh"
#include "util/json.hh"
#include "util/rng.hh"

namespace mcscope {
namespace {

ScenarioSpec
presetSpec(const std::string &preset, const std::string &workload,
           size_t option, int ranks)
{
    ScenarioSpec s;
    s.workload = workload;
    s.machinePreset = preset;
    s.machine = configByName(preset);
    s.option = table5Options()[option];
    s.ranks = ranks;
    return s;
}

// ---------------------------------------------------------------------
// Digest preservation: the registry refactor moved machine JSON
// serialization into src/machine and rerouted every name lookup, and
// the topology generalizations (SMT contexts, cluster fabric) touched
// the resource construction and placement math.  None of that may move
// a 2006-preset digest: these 24 values were minted by the pre-registry
// tree and every cached result ever written depends on them.
// ---------------------------------------------------------------------

struct PinnedDigest
{
    const char *preset;
    const char *workload;
    size_t option;
    int ranks;
    uint64_t digest;
};

const PinnedDigest kPinned[] = {
    {"tiger", "stream", 0, 2, 0xc3f540cf765401caULL},
    {"tiger", "stream", 0, 4, 0x4b3810ab7c263b84ULL},
    {"tiger", "stream", 5, 2, 0x857db7202e1bd6c8ULL},
    {"tiger", "stream", 5, 4, 0x1e4ed86c45679526ULL},
    {"tiger", "nas-cg-b", 0, 2, 0x366d00b82d2c77cbULL},
    {"tiger", "nas-cg-b", 0, 4, 0x68cae29ba22176a9ULL},
    {"tiger", "nas-cg-b", 5, 2, 0xccf5e11efb7ed1cdULL},
    {"tiger", "nas-cg-b", 5, 4, 0x7a8e468b2dd32ef7ULL},
    {"dmz", "stream", 0, 2, 0xb0dfc5056de93607ULL},
    {"dmz", "stream", 0, 4, 0xb5db22de9390f3b9ULL},
    {"dmz", "stream", 5, 2, 0x629ebd393c110ba1ULL},
    {"dmz", "stream", 5, 4, 0xfec5e81adfe9cf4fULL},
    {"dmz", "nas-cg-b", 0, 2, 0x4e4a1a4f03849bc0ULL},
    {"dmz", "nas-cg-b", 0, 4, 0xca997ed86951de96ULL},
    {"dmz", "nas-cg-b", 5, 2, 0x7593af15128245ceULL},
    {"dmz", "nas-cg-b", 5, 4, 0xc08fd597eec62ad8ULL},
    {"longs", "stream", 0, 2, 0xf9a5a2551c8ded1bULL},
    {"longs", "stream", 0, 4, 0x35f3e2920040e225ULL},
    {"longs", "stream", 5, 2, 0x5f00070fdabb49b5ULL},
    {"longs", "stream", 5, 4, 0xbc3277d07f82be6bULL},
    {"longs", "nas-cg-b", 0, 2, 0x0faa223239472784ULL},
    {"longs", "nas-cg-b", 0, 4, 0x2b15e8d8c2515e72ULL},
    {"longs", "nas-cg-b", 5, 2, 0x8ab30f8e1fed1e02ULL},
    {"longs", "nas-cg-b", 5, 4, 0x9db238c693e90394ULL},
};

TEST(DigestPreservation, PinnedPresetDigests)
{
    for (const PinnedDigest &p : kPinned) {
        ScenarioSpec s =
            presetSpec(p.preset, p.workload, p.option, p.ranks);
        EXPECT_EQ(s.digest(), p.digest)
            << p.preset << "/" << p.workload << " option " << p.option
            << " ranks " << p.ranks;
    }
}

// Preset-vs-inline differential: a spec naming a preset and a spec
// carrying the preset's full config inline are the same experiment and
// must mint the same digest, across a randomized scatter of the other
// axes.  This is what lets zoo machines ship inline without forking
// the content-address space.
TEST(DigestPreservation, RandomizedPresetVsInlineDifferential)
{
    const std::vector<std::string> presets = presetNames();
    const std::vector<std::string> workloads = {
        "stream", "daxpy-acml", "nas-cg-b", "nas-ft-b", "lammps-lj",
        "hpcc-fft", "randomaccess", "hpl"};
    const auto options = table5Options();
    Rng rng(0x500C1ED5);
    for (int i = 0; i < 128; ++i) {
        const std::string preset =
            presets[rng.below(presets.size())];
        ScenarioSpec s;
        s.workload = workloads[rng.below(workloads.size())];
        s.machinePreset = preset;
        s.machine = configByName(preset);
        s.option = options[rng.below(options.size())];
        s.ranks = 1 << rng.below(5);
        s.impl = rng.below(2) ? MpiImpl::OpenMpi : MpiImpl::Mpich2;
        s.sublayer = rng.below(2) ? SubLayer::USysV : SubLayer::SysV;

        // The inline twin: same config, no preset name.  canonicalize
        // must collapse it back onto the preset.
        ScenarioSpec inl = s;
        inl.machinePreset.clear();
        EXPECT_EQ(s.digest(), inl.digest()) << "iteration " << i;
        EXPECT_EQ(s.canonicalText(), inl.canonicalText());

        // And through JSON: preset-string spelling vs the machine
        // object spelled out field by field.
        JsonValue doc = s.toJson();
        doc.set("machine", machineConfigToJson(s.machine));
        std::string error;
        auto back = parseScenarioSpec(doc, &error);
        ASSERT_TRUE(back) << error;
        EXPECT_EQ(s.digest(), back->digest()) << "iteration " << i;
    }
}

// ---------------------------------------------------------------------
// Definition serialization round-trips.
// ---------------------------------------------------------------------

TEST(MachineSerialize, BuiltinRoundTrip)
{
    for (const std::string &name : presetNames()) {
        MachineConfig c = configByName(name);
        std::string error;
        auto back = parseMachineConfig(machineConfigToJson(c), &error);
        ASSERT_TRUE(back) << name << ": " << error;
        EXPECT_EQ(machineConfigToJson(c).dump(),
                  machineConfigToJson(*back).dump())
            << name;
    }
}

TEST(MachineSerialize, ModernTopologyRoundTrip)
{
    MachineConfig c;
    c.name = "smt-cluster";
    c.sockets = 8;
    c.coresPerSocket = 4;
    c.threadsPerCore = 8;
    c.smtThreadThroughput = 0.25;
    c.nodes = 4;
    c.fabricBandwidth = 1.25e9;
    c.fabricLinkLatency = 2.5e-6;
    c.htLinks = {{0, 1}};
    std::string error;
    auto back = parseMachineConfig(machineConfigToJson(c), &error);
    ASSERT_TRUE(back) << error;
    EXPECT_EQ(back->threadsPerCore, 8);
    EXPECT_EQ(back->smtThreadThroughput, 0.25);
    EXPECT_EQ(back->nodes, 4);
    EXPECT_EQ(back->fabricBandwidth, 1.25e9);
    EXPECT_EQ(back->fabricLinkLatency, 2.5e-6);
    EXPECT_EQ(machineConfigToJson(c).dump(),
              machineConfigToJson(*back).dump());
}

// The new keys are emitted only away from their defaults, so the
// canonical text of every pre-registry machine is byte-stable.
TEST(MachineSerialize, DefaultTopologyKeysStayUnwritten)
{
    for (const std::string &name : presetNames()) {
        std::string text =
            machineConfigToJson(configByName(name)).dump();
        EXPECT_EQ(text.find("threads_per_core"), std::string::npos);
        EXPECT_EQ(text.find("smt_thread_throughput"),
                  std::string::npos);
        EXPECT_EQ(text.find("nodes"), std::string::npos);
        EXPECT_EQ(text.find("fabric_bandwidth"), std::string::npos);
        EXPECT_EQ(text.find("fabric_link_latency"), std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Malformed definitions: every rejection class the loader promises.
// ---------------------------------------------------------------------

std::optional<MachineConfig>
parseText(const std::string &text, std::string *error)
{
    auto doc = parseJson(text, error);
    if (!doc)
        return std::nullopt;
    return parseMachineConfig(*doc, error);
}

TEST(MachineSerialize, RejectsBadSmtWidths)
{
    std::string error;
    EXPECT_FALSE(parseText(
        R"({"name":"x","sockets":2,"cores_per_socket":2,)"
        R"("threads_per_core":0,"ht_links":[[0,1]]})",
        &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseText(
        R"({"name":"x","sockets":2,"cores_per_socket":2,)"
        R"("threads_per_core":2.5,"ht_links":[[0,1]]})",
        &error));
    EXPECT_NE(error.find("integer"), std::string::npos) << error;
    // An SMT width needs a sub-unity single-thread throughput to be
    // meaningful, but throughput bounds are the hard contract.
    EXPECT_FALSE(parseText(
        R"({"name":"x","sockets":2,"cores_per_socket":2,)"
        R"("threads_per_core":4,"smt_thread_throughput":1.5,)"
        R"("ht_links":[[0,1]]})",
        &error));
    EXPECT_FALSE(parseText(
        R"({"name":"x","sockets":2,"cores_per_socket":2,)"
        R"("threads_per_core":4,"smt_thread_throughput":0.0,)"
        R"("ht_links":[[0,1]]})",
        &error));
}

TEST(MachineSerialize, RejectsOrphanFabricAndBadNodeCounts)
{
    std::string error;
    // Fabric parameters without nodes > 1: orphan fabric.
    EXPECT_FALSE(parseText(
        R"({"name":"x","sockets":2,"cores_per_socket":2,)"
        R"("fabric_bandwidth":1e9,"ht_links":[[0,1]]})",
        &error));
    EXPECT_NE(error.find("orphan fabric"), std::string::npos) << error;
    // nodes > 1 without fabric bandwidth.
    EXPECT_FALSE(parseText(
        R"({"name":"x","sockets":4,"cores_per_socket":2,)"
        R"("nodes":2,"ht_links":[[0,1]]})",
        &error));
    // nodes must divide sockets.
    EXPECT_FALSE(parseText(
        R"({"name":"x","sockets":5,"cores_per_socket":2,"nodes":2,)"
        R"("fabric_bandwidth":1e9,"ht_links":[[0,1]]})",
        &error));
    EXPECT_NE(error.find("divide"), std::string::npos) << error;
}

TEST(MachineSerialize, RejectsBadLinks)
{
    std::string error;
    EXPECT_FALSE(parseText(
        R"({"name":"x","sockets":2,"cores_per_socket":1,)"
        R"("ht_links":[[0,0]]})",
        &error));
    EXPECT_NE(error.find("self-link"), std::string::npos) << error;
    EXPECT_FALSE(parseText(
        R"({"name":"x","sockets":2,"cores_per_socket":1,)"
        R"("ht_links":[[0,1],[1,0]]})",
        &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
    // Disconnected: two sockets, no link.
    EXPECT_FALSE(parseText(
        R"({"name":"x","sockets":2,"cores_per_socket":1,)"
        R"("ht_links":[]})",
        &error));
    // Cluster links are node-local: endpoint 2 is outside a
    // 2-sockets-per-node group.
    EXPECT_FALSE(parseText(
        R"({"name":"x","sockets":4,"cores_per_socket":1,"nodes":2,)"
        R"("fabric_bandwidth":1e9,"ht_links":[[0,2]]})",
        &error));
    EXPECT_NE(error.find("node-local"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// The registry itself.
// ---------------------------------------------------------------------

MachineConfig
zooConfig(const std::string &name)
{
    MachineConfig c = configByName("dmz");
    c.name = name;
    return c;
}

TEST(MachineRegistry, BuiltinsAreRegisteredAndOrdered)
{
    MachineRegistry &reg = MachineRegistry::instance();
    EXPECT_EQ(reg.builtinNames(), presetNames());
    for (const std::string &name : presetNames()) {
        ASSERT_NE(reg.find(name), nullptr) << name;
        EXPECT_TRUE(reg.isBuiltin(name));
        // Case-insensitive lookup.
        ASSERT_NE(reg.find("TIGER"), nullptr);
    }
    EXPECT_EQ(reg.find("no-such-machine"), nullptr);
}

TEST(MachineRegistry, RejectsDuplicatesIncludingBuiltinCollisions)
{
    MachineRegistry &reg = MachineRegistry::instance();
    std::string problem = reg.registerMachine(zooConfig("Tiger"));
    EXPECT_NE(problem.find("duplicate"), std::string::npos) << problem;
    EXPECT_NE(problem.find("builtin"), std::string::npos) << problem;

    ASSERT_EQ(reg.registerMachine(zooConfig("dup-probe")), "");
    problem = reg.registerMachine(zooConfig("DUP-Probe"));
    EXPECT_NE(problem.find("duplicate"), std::string::npos) << problem;

    MachineConfig nameless = zooConfig("");
    EXPECT_FALSE(reg.registerMachine(nameless).empty());
}

TEST(MachineRegistry, SuggestsNearestName)
{
    MachineRegistry &reg = MachineRegistry::instance();
    EXPECT_EQ(reg.suggest("tigr"), "Tiger");
    EXPECT_EQ(reg.suggest("longss"), "Longs");
}

TEST(MachineRegistry, LoadDirectoryRoundTrip)
{
    char tmpl[] = "/tmp/mcscope_registry_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    std::string dir = tmpl;
    {
        std::ofstream f(dir + "/boxa.json");
        f << R"({"name":"boxa","sockets":2,"cores_per_socket":4,)"
          << R"("threads_per_core":2,"smt_thread_throughput":0.6,)"
          << R"("core_ghz":2.6,"ht_links":[[0,1]]})";
    }
    {
        std::ofstream f(dir + "/not-a-machine.txt");
        f << "ignored";
    }
    MachineRegistry &reg = MachineRegistry::instance();
    ASSERT_EQ(reg.loadDirectory(dir), "");
    const MachineConfig *c = reg.find("boxa");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->sockets, 2);
    EXPECT_EQ(c->threadsPerCore, 2);
    EXPECT_EQ(c->smtThreadThroughput, 0.6);
    EXPECT_FALSE(reg.isBuiltin("boxa"));

    // A second load of the same directory is a duplicate-name error
    // that names the offending file.
    std::string problem = reg.loadDirectory(dir);
    EXPECT_NE(problem.find("boxa.json"), std::string::npos) << problem;
    EXPECT_NE(problem.find("duplicate"), std::string::npos) << problem;

    // A malformed file is reported by path, not silently skipped.
    char tmpl2[] = "/tmp/mcscope_registry_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl2), nullptr);
    std::string dir2 = tmpl2;
    {
        std::ofstream f(dir2 + "/bad.json");
        f << R"({"name":"bad","sockets":2,"cores_per_socket":1,)"
          << R"("fabric_bandwidth":1e9,"ht_links":[[0,1]]})";
    }
    problem = reg.loadDirectory(dir2);
    EXPECT_NE(problem.find("bad.json"), std::string::npos) << problem;
    EXPECT_NE(problem.find("orphan fabric"), std::string::npos)
        << problem;
}

// ---------------------------------------------------------------------
// Name resolution through the spec and plan parsers.
// ---------------------------------------------------------------------

TEST(MachineRegistry, SpecResolvesZooMachinesInline)
{
    MachineRegistry &reg = MachineRegistry::instance();
    if (reg.find("spec-zoo") == nullptr) {
        ASSERT_EQ(reg.registerMachine(zooConfig("spec-zoo")), "");
    }
    std::string error;
    auto doc = parseJson(
        R"({"workload":"stream","machine":"spec-zoo","ranks":2})",
        &error);
    ASSERT_TRUE(doc) << error;
    auto spec = parseScenarioSpec(*doc, &error);
    ASSERT_TRUE(spec) << error;
    // Zoo machines travel inline: the spec is self-contained.
    EXPECT_TRUE(spec->machinePreset.empty());
    EXPECT_EQ(spec->machine.name, "spec-zoo");
    EXPECT_NE(spec->canonicalText().find("spec-zoo"),
              std::string::npos);

    // Unknown names error with a nearest-name hint.
    doc = parseJson(R"({"workload":"stream","machine":"spec-zo"})",
                    &error);
    ASSERT_TRUE(doc);
    EXPECT_FALSE(parseScenarioSpec(*doc, &error));
    EXPECT_NE(error.find("spec-zoo"), std::string::npos) << error;
}

TEST(MachineRegistry, PlanMachinesAxisExpandsOutermost)
{
    MachineRegistry &reg = MachineRegistry::instance();
    if (reg.find("plan-zoo") == nullptr) {
        ASSERT_EQ(reg.registerMachine(zooConfig("plan-zoo")), "");
    }
    std::string error;
    auto doc = parseJson(
        R"({"machines":["tiger","plan-zoo"],)"
        R"("workloads":["stream"],"ranks":[2],"options":[0]})",
        &error);
    ASSERT_TRUE(doc) << error;
    auto plan = SweepPlan::fromJson(*doc, &error);
    ASSERT_TRUE(plan) << error;
    ASSERT_EQ(plan->axes().machineVariants(), 2u);
    EXPECT_EQ(plan->axes().variantPreset(0), "tiger");
    EXPECT_EQ(plan->axes().variantPreset(1), "");
    EXPECT_EQ(plan->axes().variantMachine(1).name, "plan-zoo");
    ASSERT_EQ(plan->pointCount(), 2u);
    // Builtin entries keep the digest-preserving preset collapse.
    EXPECT_EQ(plan->pointSpec(plan->pointIndex(0, 0, 0, 0, 0, 0))
                  .machinePreset,
              "tiger");
    EXPECT_TRUE(plan->pointSpec(plan->pointIndex(0, 0, 0, 0, 0, 1))
                    .machinePreset.empty());

    // Mutual exclusions.
    doc = parseJson(
        R"({"machine":"tiger","machines":["dmz"],)"
        R"("workloads":["stream"]})",
        &error);
    ASSERT_TRUE(doc);
    EXPECT_FALSE(SweepPlan::fromJson(*doc, &error));
    EXPECT_NE(error.find("mutually exclusive"), std::string::npos)
        << error;
    doc = parseJson(
        R"({"machines":["dmz"],"directory_entries":[1024],)"
        R"("workloads":["stream"]})",
        &error);
    ASSERT_TRUE(doc);
    EXPECT_FALSE(SweepPlan::fromJson(*doc, &error));
    EXPECT_NE(error.find("mutually exclusive"), std::string::npos)
        << error;

    // Unknown machine in the axis: error with suggestion.
    doc = parseJson(
        R"({"machines":["tigr"],"workloads":["stream"]})", &error);
    ASSERT_TRUE(doc);
    EXPECT_FALSE(SweepPlan::fromJson(*doc, &error));
    EXPECT_NE(error.find("tiger"), std::string::npos) << error;
}

} // namespace
} // namespace mcscope
