/**
 * @file
 * Coherence-model tests (DESIGN.md §15): unit tests for the
 * CoherenceModel pricing, the legacy-alpha bit-identity contract, the
 * emergent snoopy STREAM shape on Longs, directory capacity
 * monotonicity, and the transferWork / MachineConfig::validate
 * contracts that ride along.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/experiment.hh"
#include "kernels/stream.hh"
#include "machine/coherence.hh"
#include "machine/config.hh"
#include "machine/machine.hh"
#include "util/rng.hh"

namespace mcscope {
namespace {

NumactlOption
pinnedSpread()
{
    return {"spread", TaskScheme::Spread, MemPolicy::LocalAlloc};
}

ExperimentConfig
auditedConfig(const MachineConfig &m, int ranks)
{
    ExperimentConfig c;
    c.machine = m;
    c.option = pinnedSpread();
    c.ranks = ranks;
    c.audit = true;
    return c;
}

// ---------------------------------------------------------------------
// CoherenceModel unit tests.
// ---------------------------------------------------------------------

TEST(CoherenceModel, ModeNamesRoundTrip)
{
    for (CoherenceMode mode :
         {CoherenceMode::LegacyAlpha, CoherenceMode::Snoopy,
          CoherenceMode::Directory}) {
        CoherenceMode back = CoherenceMode::LegacyAlpha;
        ASSERT_TRUE(parseCoherenceMode(coherenceModeName(mode), &back));
        EXPECT_EQ(back, mode);
    }
    CoherenceMode out = CoherenceMode::Directory;
    EXPECT_FALSE(parseCoherenceMode("mesi", &out));
    EXPECT_EQ(out, CoherenceMode::Directory) << "out must be untouched";
}

TEST(CoherenceModel, TransferTaxPerMode)
{
    CoherenceConfig cfg;
    cfg.probeBytes = 4.0;
    cfg.lineBytes = 64.0;

    cfg.mode = CoherenceMode::LegacyAlpha;
    EXPECT_EQ(CoherenceModel(cfg, 8).transferTax(), 1.0);

    // Snoopy broadcasts: one probe per remote socket per line.
    cfg.mode = CoherenceMode::Snoopy;
    EXPECT_DOUBLE_EQ(CoherenceModel(cfg, 8).transferTax(),
                     1.0 + 4.0 / 64.0 * 7.0);
    EXPECT_EQ(CoherenceModel(cfg, 1).transferTax(), 1.0);

    // Directory resolves with a single home lookup.
    cfg.mode = CoherenceMode::Directory;
    EXPECT_DOUBLE_EQ(CoherenceModel(cfg, 8).transferTax(),
                     1.0 + 4.0 / 64.0);
}

TEST(CoherenceModel, DirectoryEvictFractionShape)
{
    CoherenceConfig cfg;
    cfg.mode = CoherenceMode::Directory;
    cfg.lineBytes = 64.0;
    cfg.directoryEntries = 1024.0;
    cfg.directoryWays = 4.0;
    CoherenceModel model(cfg, 4);

    // One way's worth of conflict loss: 1024 * 4/5 effective entries.
    double eff = 1024.0 * 4.0 / 5.0;
    EXPECT_EQ(model.directoryEvictFraction(0.0), 0.0);
    EXPECT_EQ(model.directoryEvictFraction(eff * 64.0), 0.0);
    double big = 4.0 * eff * 64.0;
    EXPECT_DOUBLE_EQ(model.directoryEvictFraction(big), 0.75);

    // Monotone: more bytes evict a larger fraction...
    EXPECT_GT(model.directoryEvictFraction(2.0 * big),
              model.directoryEvictFraction(big));
    // ...and a larger directory evicts a smaller one.
    cfg.directoryEntries = 4096.0;
    EXPECT_LT(CoherenceModel(cfg, 4).directoryEvictFraction(big),
              model.directoryEvictFraction(big));

    // Other modes never report capacity pressure.
    cfg.mode = CoherenceMode::Snoopy;
    EXPECT_EQ(CoherenceModel(cfg, 4).directoryEvictFraction(big), 0.0);
}

TEST(CoherenceModel, SnoopyBroadcastsToAllRemoteSockets)
{
    CoherenceConfig cfg;
    cfg.mode = CoherenceMode::Snoopy;
    CoherenceModel model(cfg, 4);

    std::vector<CoherenceFlow> flows;
    double bytes = 64.0 * 1000.0;
    model.priceAccess(1, 1, bytes, SharingDescriptor::privateData(),
                      flows);
    ASSERT_EQ(flows.size(), 3u);
    int expect_to[] = {0, 2, 3}; // ascending, requester skipped
    for (size_t i = 0; i < flows.size(); ++i) {
        EXPECT_EQ(flows[i].kind, CoherenceFlow::Kind::Control);
        EXPECT_EQ(flows[i].from, 1);
        EXPECT_EQ(flows[i].to, expect_to[i]);
        EXPECT_DOUBLE_EQ(flows[i].bytes, 1000.0 * cfg.probeBytes);
    }

    // The broadcast is sharing-independent: read-shared data prices
    // exactly the same probes.
    std::vector<CoherenceFlow> shared;
    model.priceAccess(1, 1, bytes, SharingDescriptor::readShared(4),
                      shared);
    ASSERT_EQ(shared.size(), flows.size());
    for (size_t i = 0; i < flows.size(); ++i)
        EXPECT_EQ(shared[i].bytes, flows[i].bytes);
}

TEST(CoherenceModel, QuietCasesEmitNothing)
{
    std::vector<CoherenceFlow> flows;

    CoherenceConfig cfg; // LegacyAlpha
    CoherenceModel(cfg, 8).priceAccess(
        0, 1, 1e6, SharingDescriptor::migratory(), flows);
    EXPECT_TRUE(flows.empty()) << "legacy mode must not emit flows";

    cfg.mode = CoherenceMode::Snoopy;
    CoherenceModel(cfg, 1).priceAccess(
        0, 0, 1e6, SharingDescriptor::privateData(), flows);
    EXPECT_TRUE(flows.empty()) << "single socket has nobody to probe";

    CoherenceModel(cfg, 8).priceAccess(
        0, 1, 0.0, SharingDescriptor::privateData(), flows);
    EXPECT_TRUE(flows.empty()) << "zero bytes price zero traffic";

    cfg.probeBytes = 0.0;
    CoherenceModel(cfg, 8).priceAccess(
        0, 1, 1e6, SharingDescriptor::privateData(), flows);
    EXPECT_TRUE(flows.empty()) << "free probes need no fabric time";

    // Directory mode, private data, region fits the directory.
    cfg = CoherenceConfig{};
    cfg.mode = CoherenceMode::Directory;
    CoherenceModel(cfg, 8).priceAccess(
        0, 1, 1e4, SharingDescriptor::privateData(), flows);
    EXPECT_TRUE(flows.empty())
        << "filtered probes: private data fits the directory";
}

TEST(CoherenceModel, DirectoryReadSharedInvalidatesPointToPoint)
{
    CoherenceConfig cfg;
    cfg.mode = CoherenceMode::Directory;
    CoherenceModel model(cfg, 8);

    std::vector<CoherenceFlow> flows;
    double bytes = 64.0 * 100.0; // fits the directory: no evictions
    model.priceAccess(2, 0, bytes, SharingDescriptor::readShared(3),
                      flows);
    // 3 sharers -> 2 victims, ascending socket ids, writer skipped.
    ASSERT_EQ(flows.size(), 2u);
    double inval = kSharedWriteFraction * 100.0 * cfg.probeBytes;
    int expect_to[] = {0, 1};
    for (size_t i = 0; i < flows.size(); ++i) {
        EXPECT_EQ(flows[i].kind, CoherenceFlow::Kind::Control);
        EXPECT_EQ(flows[i].from, 2);
        EXPECT_EQ(flows[i].to, expect_to[i]);
        EXPECT_DOUBLE_EQ(flows[i].bytes, inval);
    }

    // Sharer counts are clamped to the socket count.
    std::vector<CoherenceFlow> many;
    model.priceAccess(2, 0, bytes, SharingDescriptor::readShared(64),
                      many);
    EXPECT_EQ(many.size(), 7u);
}

TEST(CoherenceModel, DirectoryMigratoryTransfersOwnership)
{
    CoherenceConfig cfg;
    cfg.mode = CoherenceMode::Directory;
    CoherenceModel model(cfg, 4);

    std::vector<CoherenceFlow> flows;
    double lines = 100.0;
    model.priceAccess(1, 3, 64.0 * lines,
                      SharingDescriptor::migratory(), flows);
    ASSERT_EQ(flows.size(), 2u);
    // Request to the home directory...
    EXPECT_EQ(flows[0].kind, CoherenceFlow::Kind::Control);
    EXPECT_EQ(flows[0].from, 1);
    EXPECT_EQ(flows[0].to, 3);
    EXPECT_DOUBLE_EQ(flows[0].bytes, lines * cfg.probeBytes);
    // ...then a cache-to-cache transfer from the ring-successor owner.
    EXPECT_EQ(flows[1].kind, CoherenceFlow::Kind::Control);
    EXPECT_EQ(flows[1].from, 2);
    EXPECT_EQ(flows[1].to, 1);
    EXPECT_DOUBLE_EQ(flows[1].bytes,
                     lines * (cfg.probeBytes + cfg.lineBytes));
}

TEST(CoherenceModel, DirectoryCapacityEvictionsRefillFromHome)
{
    CoherenceConfig cfg;
    cfg.mode = CoherenceMode::Directory;
    cfg.directoryEntries = 1024.0;
    cfg.directoryWays = 4.0;
    CoherenceModel model(cfg, 4);

    double bytes = 4.0 * 1024.0 * 64.0; // 4x the directory: evictions
    double evict = model.directoryEvictFraction(bytes);
    ASSERT_GT(evict, 0.0);

    std::vector<CoherenceFlow> flows;
    model.priceAccess(2, 0, bytes, SharingDescriptor::privateData(),
                      flows);
    ASSERT_EQ(flows.size(), 2u);
    // Re-fetch of the back-invalidated lines from home memory...
    EXPECT_EQ(flows[0].kind, CoherenceFlow::Kind::Refill);
    EXPECT_EQ(flows[0].from, 0);
    EXPECT_EQ(flows[0].to, 2);
    EXPECT_DOUBLE_EQ(flows[0].bytes, evict * bytes);
    // ...after a recall notice from the home directory.
    EXPECT_EQ(flows[1].kind, CoherenceFlow::Kind::Control);
    EXPECT_EQ(flows[1].from, 0);
    EXPECT_EQ(flows[1].to, 2);

    // Local accesses skip the recall message but still refill.
    std::vector<CoherenceFlow> local;
    model.priceAccess(0, 0, bytes, SharingDescriptor::privateData(),
                      local);
    ASSERT_EQ(local.size(), 1u);
    EXPECT_EQ(local[0].kind, CoherenceFlow::Kind::Refill);
}

// ---------------------------------------------------------------------
// Legacy bit-identity: the alpha scalar must still price exactly the
// historical formulas, and folding it into the raw bandwidth must not
// change a single bit of the simulation.
// ---------------------------------------------------------------------

TEST(CoherenceLegacy, PricingMatchesHistoricalFormulas)
{
    Rng rng(0xC0DEC0DE);
    for (int i = 0; i < 120; ++i) {
        MachineConfig cfg;
        switch (rng.below(3)) {
          case 0:
            cfg = tigerConfig();
            break;
          case 1:
            cfg = dmzConfig();
            break;
          default:
            cfg = longsConfig();
        }
        cfg.memBandwidthPerSocket = rng.uniform(1.0e9, 8.0e9);
        cfg.coherenceAlpha = rng.uniform(0.0, 0.5);
        cfg.sameDieBandwidthBoost = rng.uniform(1.0, 1.3);
        Machine m(cfg);

        int core = static_cast<int>(rng.below(cfg.totalCores()));
        int node = static_cast<int>(rng.below(cfg.sockets));
        double bytes = rng.uniform(1.0e4, 1.0e8);

        // memoryWorks: one plain stream flow, no protocol traffic.
        auto works = m.memoryWorks(core, node, bytes, 3);
        ASSERT_EQ(works.size(), 1u);
        EXPECT_EQ(works[0].amount, bytes);
        EXPECT_EQ(works[0].tag, 3);
        EXPECT_EQ(works[0].rateCap,
                  cfg.streamConcurrencyBytes /
                      m.memoryLatency(m.socketOf(core), node));

        // transferWork: the exact scalar-taxed double-copy bandwidth.
        int peer = static_cast<int>(rng.below(cfg.totalCores()));
        Work t = m.transferWork(core, peer, node, bytes);
        double expect = cfg.effectiveMemBandwidth() / 2.0;
        if (m.socketOf(core) == m.socketOf(peer))
            expect *= cfg.sameDieBandwidthBoost;
        EXPECT_EQ(t.rateCap, expect);
    }
}

TEST(CoherenceLegacy, AlphaFoldsIntoBandwidthBitIdentically)
{
    // The legacy tax is one scalar on the per-socket bandwidth, so a
    // machine with (alpha, B) and one with (0, B / (1 + alpha*(s-1)))
    // must run every experiment identically -- same simulated seconds,
    // same audited event stream.  This is the regression harness for
    // "the coherence refactor did not perturb legacy results".
    std::vector<NumactlOption> options = table5Options();
    Rng rng(0xA11CE);
    int compared = 0;
    for (int i = 0; i < 170; ++i) {
        MachineConfig base = rng.below(2) ? dmzConfig() : longsConfig();
        base.coherenceAlpha = rng.uniform(0.0, 0.6);
        MachineConfig folded = base;
        folded.memBandwidthPerSocket = base.effectiveMemBandwidth();
        folded.coherenceAlpha = 0.0;

        StreamWorkload stream(1u << (14 + rng.below(5)),
                              1 + rng.below(4));
        int ranks = 1 << rng.below(4);
        NumactlOption opt = options[rng.below(options.size())];

        ExperimentConfig ca = auditedConfig(base, ranks);
        ca.option = opt;
        ca.impl = rng.below(2) ? MpiImpl::Lam : MpiImpl::OpenMpi;
        ca.sublayer = rng.below(2) ? SubLayer::SysV : SubLayer::USysV;
        ExperimentConfig cb = ca;
        cb.machine = folded;

        RunResult ra = runExperiment(ca, stream);
        RunResult rb = runExperiment(cb, stream);
        ASSERT_EQ(ra.valid, rb.valid);
        if (!ra.valid)
            continue;
        ++compared;
        EXPECT_EQ(ra.seconds, rb.seconds) << "scenario " << i;
        EXPECT_EQ(ra.events, rb.events) << "scenario " << i;
        ASSERT_TRUE(ra.audited && rb.audited);
        EXPECT_EQ(ra.auditDigest, rb.auditDigest) << "scenario " << i;
    }
    EXPECT_GE(compared, 100) << "differential needs >= 100 scenarios";
}

TEST(CoherenceLegacy, SnoopyChangesTheEventStream)
{
    // Sanity for the differential above: the digest is sensitive
    // enough to notice when probe traffic actually appears.
    StreamWorkload stream(1u << 16, 2);
    MachineConfig legacy = longsConfig();
    MachineConfig snoopy = legacy;
    snoopy.coherence.mode = CoherenceMode::Snoopy;
    RunResult rl = runExperiment(auditedConfig(legacy, 4), stream);
    RunResult rs = runExperiment(auditedConfig(snoopy, 4), stream);
    ASSERT_TRUE(rl.valid && rs.valid);
    EXPECT_NE(rl.auditDigest, rs.auditDigest);
    EXPECT_NE(rl.seconds, rs.seconds);
}

// ---------------------------------------------------------------------
// Emergent behavior: the paper's Longs STREAM shape from modeled
// probes, with no alpha scalar anywhere in the pricing path.
// ---------------------------------------------------------------------

TEST(CoherenceEmergent, SnoopyLongsStreamBelowHalfExpected)
{
    StreamWorkload stream(4u << 20, 8);
    MachineConfig longs = longsConfig();
    longs.coherence.mode = CoherenceMode::Snoopy;

    ExperimentConfig cfg = auditedConfig(longs, 16);
    cfg.audit = false;
    RunResult r = runExperiment(cfg, stream);
    ASSERT_TRUE(r.valid);
    double delivered =
        stream.bytesPerIteration() * 8.0 * 16.0 / r.seconds;
    // Paper Section 3.3: Longs delivers well under half the expected
    // aggregate (8 sockets x 4.1 GB/s); the broadcast probes must
    // reproduce that emergently.
    EXPECT_LT(delivered, 0.55 * 8.0 * 4.1e9);
    EXPECT_GT(delivered, 0.15 * 8.0 * 4.1e9)
        << "tax should throttle, not strangle";
}

TEST(CoherenceEmergent, ModeledPricingIgnoresTheAlphaScalar)
{
    StreamWorkload stream(1u << 18, 3);
    for (CoherenceMode mode :
         {CoherenceMode::Snoopy, CoherenceMode::Directory}) {
        MachineConfig a = longsConfig();
        a.coherence.mode = mode;
        MachineConfig b = a;
        a.coherenceAlpha = 0.0;
        b.coherenceAlpha = 0.9;
        RunResult ra = runExperiment(auditedConfig(a, 8), stream);
        RunResult rb = runExperiment(auditedConfig(b, 8), stream);
        ASSERT_TRUE(ra.valid && rb.valid);
        EXPECT_EQ(ra.seconds, rb.seconds);
        EXPECT_EQ(ra.auditDigest, rb.auditDigest)
            << "alpha must be dead in "
            << coherenceModeName(mode) << " mode";
    }
}

TEST(CoherenceEmergent, FreeProbesMatchUntaxedLegacyBitwise)
{
    // Snoopy with zero-byte probes prices no traffic, and legacy with
    // alpha = 0 applies no tax: the two engines must be identical to
    // the last bit.  This pins the modeled modes to the same raw
    // machine as legacy, so the *only* difference is the protocol.
    StreamWorkload stream(1u << 18, 3);
    MachineConfig free_probes = longsConfig();
    free_probes.coherence.mode = CoherenceMode::Snoopy;
    free_probes.coherence.probeBytes = 0.0;
    MachineConfig untaxed = longsConfig();
    untaxed.coherenceAlpha = 0.0;
    RunResult rs = runExperiment(auditedConfig(free_probes, 8), stream);
    RunResult rl = runExperiment(auditedConfig(untaxed, 8), stream);
    ASSERT_TRUE(rs.valid && rl.valid);
    EXPECT_EQ(rs.seconds, rl.seconds);
    EXPECT_EQ(rs.auditDigest, rl.auditDigest);
}

TEST(CoherenceEmergent, DirectorySizeIsMonotoneAndBeatsSnoopy)
{
    StreamWorkload stream(4u << 20, 4);
    auto seconds = [&](CoherenceMode mode, double entries) {
        MachineConfig longs = longsConfig();
        longs.coherence.mode = mode;
        longs.coherence.directoryEntries = entries;
        ExperimentConfig cfg = auditedConfig(longs, 16);
        cfg.audit = false;
        RunResult r = runExperiment(cfg, stream);
        EXPECT_TRUE(r.valid);
        return r.seconds;
    };

    double small = seconds(CoherenceMode::Directory, 4096.0);
    double mid = seconds(CoherenceMode::Directory, 65536.0);
    double large = seconds(CoherenceMode::Directory, 1048576.0);
    // Starved directories thrash: strictly slower at 4k entries than
    // at 1M, monotone through the middle.
    EXPECT_GT(small, mid);
    EXPECT_GE(mid, large);

    // A directory big enough to hold the working set filters the
    // broadcast entirely; private STREAM then outruns snoopy.
    double snoopy = seconds(CoherenceMode::Snoopy, 65536.0);
    EXPECT_LT(large, snoopy);
}

TEST(CoherenceEmergent, DirectoryInterleaveRunsAuditClean)
{
    // Regression: directory-mode refill flows share HT links across
    // otherwise-unrelated flow components, which exposed a bitwise
    // component-coupling bug in the fair-share solver (DESIGN.md §13).
    // The auditor's fresh oracle diverged from the engine's carried
    // rates on exactly this scenario; a clean audited run pins the
    // fix.
    NumactlOption interleave;
    bool found = false;
    for (const NumactlOption &opt : table5Options()) {
        if (opt.policy == MemPolicy::Interleave) {
            interleave = opt;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found);

    StreamWorkload stream(4u << 20, 10);
    MachineConfig longs = longsConfig();
    longs.coherence.mode = CoherenceMode::Directory;
    ExperimentConfig cfg = auditedConfig(longs, 16);
    cfg.option = interleave;
    RunResult r = runExperiment(cfg, stream);
    ASSERT_TRUE(r.valid);
    EXPECT_TRUE(r.audited);
    EXPECT_GT(r.auditChecks, 0u);
}

// ---------------------------------------------------------------------
// transferWork contract (satellite of the coherence refactor: the
// copy rate is where the tax lands for rendezvous transfers).
// ---------------------------------------------------------------------

TEST(MachineTransfer, SameDieBoostAppliedExactlyOnce)
{
    MachineConfig dmz = dmzConfig();
    Machine m(dmz);
    // Cores 0,1 share socket 0; core 2 lives on socket 1.
    Work same = m.transferWork(0, 1, 0, 1.0e6);
    Work cross = m.transferWork(0, 2, 0, 1.0e6);
    EXPECT_EQ(cross.rateCap, dmz.effectiveMemBandwidth() / 2.0);
    EXPECT_EQ(same.rateCap,
              dmz.effectiveMemBandwidth() / 2.0 *
                  dmz.sameDieBandwidthBoost);

    // The modeled modes divide the raw bandwidth by the transfer tax
    // instead; the same-die boost still applies exactly once.
    dmz.coherence.mode = CoherenceMode::Snoopy;
    Machine ms(dmz);
    double tax = ms.coherence().transferTax();
    EXPECT_EQ(ms.transferWork(0, 2, 0, 1.0e6).rateCap,
              dmz.memBandwidthPerSocket / (2.0 * tax));
    EXPECT_EQ(ms.transferWork(0, 1, 0, 1.0e6).rateCap,
              dmz.memBandwidthPerSocket / (2.0 * tax) *
                  dmz.sameDieBandwidthBoost);
}

TEST(MachineTransfer, PathCoversBufferAndRouteLinks)
{
    MachineConfig longs = longsConfig();
    Machine m(longs);
    int src = 0;                          // socket 0
    int dst = 3 * longs.coresPerSocket;   // first core of socket 3
    Work w = m.transferWork(src, dst, 1, 2.5e5, 9);
    EXPECT_EQ(w.amount, 2.5e5);
    EXPECT_EQ(w.tag, 9);

    const auto route = m.topology().route(0, 3);
    ASSERT_FALSE(route.empty());
    ASSERT_EQ(w.path.size(), route.size() + 1);
    EXPECT_EQ(w.path[0], m.memResource(1));
    for (size_t i = 0; i < route.size(); ++i)
        EXPECT_EQ(w.path[i + 1], m.linkResource(route[i]));

    // Same-socket transfers stay off the fabric entirely.
    Work local = m.transferWork(0, 1, 0, 1.0e3);
    ASSERT_EQ(local.path.size(), 1u);
    EXPECT_EQ(local.path[0], m.memResource(0));
}

TEST(MachineTransferDeathTest, RejectsBadBufferNode)
{
    Machine m(dmzConfig());
    ASSERT_DEATH(m.transferWork(0, 2, 7, 1.0e3), "bad buffer node");
}

// ---------------------------------------------------------------------
// MachineConfig / CoherenceConfig validation.
// ---------------------------------------------------------------------

TEST(ConfigValidateDeathTest, RejectsSelfAndDuplicateLinks)
{
    MachineConfig self = dmzConfig();
    self.htLinks.push_back({1, 1});
    ASSERT_DEATH(self.validate(), "HT self-link 1-1");

    MachineConfig dup = dmzConfig();
    dup.htLinks.push_back({1, 0}); // reverse of the existing 0-1
    ASSERT_DEATH(dup.validate(), "duplicate HT link 1-0");
}

TEST(ConfigValidateDeathTest, RejectsNonsenseCoherenceParameters)
{
    MachineConfig bad = dmzConfig();
    bad.coherence.probeBytes = -1.0;
    ASSERT_DEATH(bad.validate(), "probe bytes");

    bad = dmzConfig();
    bad.coherence.lineBytes = 0.0;
    ASSERT_DEATH(bad.validate(), "line bytes");

    bad = dmzConfig();
    bad.coherence.directoryEntries = 0.0;
    ASSERT_DEATH(bad.validate(), "directory entries");

    bad = dmzConfig();
    bad.coherence.directoryWays = 0.0;
    ASSERT_DEATH(bad.validate(), "directory ways");
}

} // namespace
} // namespace mcscope
