/**
 * @file
 * Modern-topology shape tests: the SMT issue-sharing resource, the
 * cluster network fabric, the placement generalizations behind them,
 * and end-to-end scaling shapes on the shipped zoo machines
 * (machines/t34.json, machines/cluster12.json).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "affinity/placement.hh"
#include "core/experiment.hh"
#include "core/registry.hh"
#include "machine/machine.hh"
#include "machine/registry.hh"
#include "sim/task.hh"

namespace mcscope {
namespace {

/** 1 socket x 2 cores x 2 threads, one thread sustains 60% alone. */
MachineConfig
smtBox()
{
    MachineConfig c;
    c.name = "smtbox";
    c.sockets = 1;
    c.coresPerSocket = 2;
    c.threadsPerCore = 2;
    c.smtThreadThroughput = 0.6;
    return c;
}

/** 4 sockets in 2 cluster nodes of 2, one HT link per node. */
MachineConfig
miniCluster()
{
    MachineConfig c;
    c.name = "minicluster";
    c.sockets = 4;
    c.coresPerSocket = 2;
    c.nodes = 2;
    c.fabricBandwidth = 1.25e9;
    c.fabricLinkLatency = 2.5e-6;
    c.htLinks = {{0, 1}};
    return c;
}

/** Makespan of one `flops`-sized compute burst per listed context. */
SimTime
computeMakespan(const MachineConfig &cfg, const std::vector<int> &contexts,
                double flops)
{
    Machine m(cfg);
    for (int c : contexts) {
        m.engine().addTask(std::make_unique<SequenceTask>(
            "t" + std::to_string(c),
            std::vector<Prim>{m.computeWork(c, flops, 1.0)}));
    }
    m.engine().run();
    return m.engine().now();
}

// ---------------------------------------------------------------------
// SMT: siblings share a physical core's issue bandwidth.
// ---------------------------------------------------------------------

TEST(Smt, ContextGeometry)
{
    MachineConfig cfg = smtBox();
    EXPECT_EQ(cfg.contextsPerSocket(), 4);
    EXPECT_EQ(cfg.totalCores(), 4);
    EXPECT_EQ(cfg.totalPhysicalCores(), 2);
    // Slots spread across physical cores before doubling onto
    // siblings: slot 0 -> core0/thread0, slot 1 -> core1/thread0,
    // slot 2 -> core0/thread1, slot 3 -> core1/thread1.
    EXPECT_EQ(cfg.smtContextIndex(0), 0);
    EXPECT_EQ(cfg.smtContextIndex(1), 2);
    EXPECT_EQ(cfg.smtContextIndex(2), 1);
    EXPECT_EQ(cfg.smtContextIndex(3), 3);

    Machine m(cfg);
    EXPECT_EQ(m.computePath(0).size(), 2u) << "context + issue port";
    Machine plain(configByName("dmz"));
    EXPECT_EQ(plain.computePath(0).size(), 1u)
        << "non-SMT compute paths unchanged";
}

TEST(Smt, SiblingsShareIssueBandwidth)
{
    MachineConfig cfg = smtBox();
    const double flops = 1.0e9;
    const double peak = cfg.coreFlops();

    // One thread alone sustains smtThreadThroughput of the core.
    SimTime alone = computeMakespan(cfg, {0}, flops);
    EXPECT_NEAR(alone, flops / (0.6 * peak), 1e-12 * alone);

    // Two sibling threads (contexts 0 and 1 share physical core 0)
    // saturate the core's issue port: each runs at half peak, which is
    // *slower* per thread than running alone...
    SimTime siblings = computeMakespan(cfg, {0, 1}, flops);
    EXPECT_NEAR(siblings, flops / (0.5 * peak), 1e-12 * siblings);
    EXPECT_GT(siblings, alone);

    // ...but faster in aggregate: 2 x 0.5 > 1 x 0.6 of peak.
    EXPECT_LT(siblings, 2.0 * alone);

    // Two threads on *different* physical cores don't contend at all.
    SimTime spread = computeMakespan(cfg, {0, 2}, flops);
    EXPECT_NEAR(spread, alone, 1e-12 * alone);
}

TEST(Smt, PlacementSpreadsAcrossPhysicalCoresFirst)
{
    MachineConfig cfg = smtBox();
    Topology topo(cfg.sockets, cfg.expandedHtLinks(), cfg.nodes);
    NumactlOption opt{"spread", TaskScheme::Spread,
                      MemPolicy::LocalAlloc};
    auto p = Placement::create(cfg, topo, opt, 2);
    ASSERT_TRUE(p);
    // Two ranks on a 2-core/2-thread socket must land on distinct
    // physical cores (contexts 0 and 2), not on SMT siblings.
    int phys0 = p->binding(0).core / cfg.threadsPerCore;
    int phys1 = p->binding(1).core / cfg.threadsPerCore;
    EXPECT_NE(phys0, phys1);
}

// ---------------------------------------------------------------------
// Cluster fabric: per-link-class latency, fabric-capped transfers.
// ---------------------------------------------------------------------

TEST(Cluster, PathLatencyPerLinkClass)
{
    MachineConfig cfg = miniCluster();
    Machine m(cfg);
    // Intra-node: one HT hop, exact legacy pricing.
    EXPECT_DOUBLE_EQ(m.pathLatency(0, 1), cfg.htHopLatency);
    // Cross-node: sockets 0 and 2 are both node attach points, so the
    // route is exactly two fabric links through the switch.
    EXPECT_DOUBLE_EQ(m.pathLatency(0, 2), 2.0 * cfg.fabricLinkLatency);
    EXPECT_EQ(m.hopsBetweenCores(0, 2 * cfg.coresPerSocket), 2);
    // Cross-node from a non-attach socket adds the HT hop to reach
    // the node's attach point.
    EXPECT_DOUBLE_EQ(m.pathLatency(1, 2),
                     cfg.htHopLatency + 2.0 * cfg.fabricLinkLatency);
    // Memory latency prices the same route round-trip.
    EXPECT_DOUBLE_EQ(m.memoryLatency(0, 2),
                     cfg.memLatency + 2.0 * (2.0 * cfg.fabricLinkLatency));
}

TEST(Cluster, LegacyLatencyIdentityOnPresets)
{
    for (const std::string &name : presetNames()) {
        MachineConfig cfg = configByName(name);
        Machine m(cfg);
        for (int a = 0; a < cfg.sockets; ++a) {
            for (int b = 0; b < cfg.sockets; ++b) {
                EXPECT_DOUBLE_EQ(m.pathLatency(a, b),
                                 m.topology().hopCount(a, b) *
                                     cfg.htHopLatency)
                    << name << " " << a << "->" << b;
            }
        }
    }
}

TEST(Cluster, CrossNodeTransfersRideTheFabric)
{
    MachineConfig cfg = miniCluster();
    Machine m(cfg);
    const double bytes = 1.0e6;
    // Sockets 0 -> 2 are different nodes: capped at fabric injection
    // bandwidth, touching both memory controllers plus the route.
    Work cross = m.transferWork(0, 2 * cfg.coresPerSocket, 0, bytes);
    EXPECT_DOUBLE_EQ(cross.rateCap, cfg.fabricBandwidth);
    EXPECT_GE(cross.path.size(), 4u)
        << "mem + 2 fabric links + mem at minimum";
    // Sockets 0 -> 1 share a node: the shared-memory double-copy
    // model, not the fabric cap.
    Work intra = m.transferWork(0, cfg.coresPerSocket, 0, bytes);
    EXPECT_NE(intra.rateCap, cfg.fabricBandwidth);
}

// ---------------------------------------------------------------------
// End-to-end shapes on the shipped zoo machines.
// ---------------------------------------------------------------------

const MachineConfig &
zooMachine(const char *name)
{
    MachineRegistry &reg = MachineRegistry::instance();
    if (reg.find(name) == nullptr) {
        std::string problem = reg.loadDirectory(
            std::string(MCSCOPE_SOURCE_DIR) + "/machines");
        EXPECT_EQ(problem, "");
    }
    const MachineConfig *cfg = reg.find(name);
    EXPECT_NE(cfg, nullptr) << name;
    return *cfg;
}

double
runSeconds(const MachineConfig &machine, const std::string &workload,
           const char *label, TaskScheme scheme, MemPolicy policy,
           int ranks)
{
    ExperimentConfig c;
    c.machine = machine;
    c.option = {label, scheme, policy};
    c.ranks = ranks;
    RunResult r = runExperiment(c, *makeWorkload(workload));
    EXPECT_TRUE(r.valid) << workload << " x" << ranks << " on "
                         << machine.name;
    return r.seconds;
}

// T3-4 (4 sockets x 16 cores x 8 threads, barrel-style cores):
// memory-bound work stops scaling once the four controllers saturate,
// and loading SMT siblings cannot push past that -- the modern "many
// contexts, same memory wall" shape the zoo exists to show.
TEST(ZooShapes, T34MemoryWallAcrossContexts)
{
    const MachineConfig &t34 = zooMachine("t3-4");
    ASSERT_EQ(t34.totalCores(), 512);
    double t8 = runSeconds(t34, "stream", "spread", TaskScheme::Spread,
                           MemPolicy::LocalAlloc, 8);
    double t64 = runSeconds(t34, "stream", "spread",
                            TaskScheme::Spread, MemPolicy::LocalAlloc,
                            64);
    // Aggregate demand grows with ranks but bandwidth does not: 8x
    // the ranks must cost clearly more than 1x and no less than the
    // per-socket bandwidth bound allows.
    EXPECT_GT(t64, 1.5 * t8);
}

// Cluster12: communication-heavy work pays the fabric when it spans
// nodes -- measured against a fabric-less twin (same 24 sockets and
// per-socket resources, wired as one HT ladder box) so the only
// difference is the interconnect class -- while bandwidth-bound work
// still gains from spreading over more memory controllers.
TEST(ZooShapes, Cluster12FabricVsBandwidthShapes)
{
    const MachineConfig &cl = zooMachine("cluster12");
    ASSERT_EQ(cl.nodes, 12);
    // Neutralize coherence in both twins: the shipped config snoops
    // node-locally, but its fabric-less twin would broadcast across
    // all 24 sockets, and that cost would swamp the interconnect
    // difference this test isolates.
    MachineConfig quiet = cl;
    quiet.coherence.mode = CoherenceMode::LegacyAlpha;
    quiet.coherenceAlpha = 0.0;
    MachineConfig flat = quiet;
    flat.name = "flatbox";
    flat.nodes = 1;
    flat.fabricBandwidth = 0.0;
    flat.fabricLinkLatency = 0.0;
    flat.htLinks = ladderLinks(12);

    const int ranks = 8;
    double cg_cluster =
        runSeconds(quiet, "nas-cg-b", "spread", TaskScheme::Spread,
                   MemPolicy::LocalAlloc, ranks);
    double cg_flat =
        runSeconds(flat, "nas-cg-b", "spread", TaskScheme::Spread,
                   MemPolicy::LocalAlloc, ranks);
    EXPECT_GT(cg_cluster, cg_flat)
        << "CG halo exchange must pay the microsecond-class fabric "
           "that the HT ladder twin does not charge";

    double st_packed =
        runSeconds(cl, "stream", "packed", TaskScheme::Packed,
                   MemPolicy::LocalAlloc, 4);
    double st_spread =
        runSeconds(cl, "stream", "spread", TaskScheme::Spread,
                   MemPolicy::LocalAlloc, 4);
    EXPECT_LT(st_spread, st_packed)
        << "STREAM must gain from spreading over more controllers";
}

} // namespace
} // namespace mcscope
