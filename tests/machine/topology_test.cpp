/**
 * @file
 * Unit tests for HT topology routing: hop counts, route validity,
 * ladder geometry, and determinism.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "machine/topology.hh"

namespace mcscope {
namespace {

TEST(Topology, SingleSocket)
{
    Topology t(1, {});
    EXPECT_EQ(t.hopCount(0, 0), 0);
    EXPECT_EQ(t.diameter(), 0);
    EXPECT_TRUE(t.route(0, 0).empty());
}

TEST(Topology, TwoSockets)
{
    Topology t(2, {{0, 1}});
    EXPECT_EQ(t.hopCount(0, 1), 1);
    EXPECT_EQ(t.hopCount(1, 0), 1);
    EXPECT_EQ(t.directedLinkCount(), 2);
    ASSERT_EQ(t.route(0, 1).size(), 1u);
    ASSERT_EQ(t.route(1, 0).size(), 1u);
    EXPECT_NE(t.route(0, 1)[0], t.route(1, 0)[0]);
}

TEST(Topology, LadderGeometry)
{
    // The Longs 2x4 ladder: bottom rail 0-3, top rail 4-7.
    auto links = ladderLinks(4);
    EXPECT_EQ(links.size(), 10u); // 3 + 3 rail edges + 4 rungs
    Topology t(8, links);
    EXPECT_EQ(t.hopCount(0, 3), 3);
    EXPECT_EQ(t.hopCount(0, 4), 1);  // rung
    EXPECT_EQ(t.hopCount(0, 7), 4);  // corner to corner
    EXPECT_EQ(t.hopCount(1, 6), 2);
    EXPECT_EQ(t.diameter(), 4);
}

TEST(Topology, RoutesFollowEdges)
{
    Topology t(8, ladderLinks(4));
    for (int a = 0; a < 8; ++a) {
        for (int b = 0; b < 8; ++b) {
            const auto &route = t.route(a, b);
            EXPECT_EQ(static_cast<int>(route.size()), t.hopCount(a, b));
            int cur = a;
            for (int id : route) {
                auto [from, to] = t.directedEndpoints(id);
                EXPECT_EQ(from, cur);
                cur = to;
            }
            EXPECT_EQ(cur, b);
        }
    }
}

TEST(Topology, HopCountSymmetric)
{
    Topology t(8, ladderLinks(4));
    for (int a = 0; a < 8; ++a)
        for (int b = 0; b < 8; ++b)
            EXPECT_EQ(t.hopCount(a, b), t.hopCount(b, a));
}

TEST(Topology, Deterministic)
{
    Topology t1(8, ladderLinks(4));
    Topology t2(8, ladderLinks(4));
    for (int a = 0; a < 8; ++a)
        for (int b = 0; b < 8; ++b)
            EXPECT_EQ(t1.route(a, b), t2.route(a, b));
}

TEST(TopologyDeath, DisconnectedGraphPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_DEATH({ Topology t(3, {{0, 1}}); }, "disconnected");
}

} // namespace
} // namespace mcscope
