/**
 * @file
 * Tests for the NPB MG and IS kernels and the full STREAM operation
 * set: real multigrid convergence, real sort correctness, and the
 * cost models' scaling characters.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hh"
#include "kernels/nas_is.hh"
#include "kernels/nas_mg.hh"
#include "kernels/stream.hh"
#include "machine/config.hh"
#include "util/rng.hh"

namespace mcscope {
namespace {

Field3d
randomField(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Field3d f(n);
    for (double &v : f.data)
        v = rng.uniform(-1.0, 1.0);
    // Periodic Poisson needs a zero-mean right-hand side.
    double mean = 0.0;
    for (double v : f.data)
        mean += v;
    mean /= f.data.size();
    for (double &v : f.data)
        v -= mean;
    return f;
}

TEST(MgFunctional, SmoothingReducesResidual)
{
    Field3d v = randomField(16, 3);
    Field3d u(16);
    double before = mgResidualNorm(u, v);
    mgSmooth(u, v, 10);
    double after = mgResidualNorm(u, v);
    EXPECT_LT(after, before);
}

TEST(MgFunctional, VCycleBeatsPlainSmoothing)
{
    Field3d v = randomField(16, 5);
    Field3d u_smooth(16), u_mg(16);
    mgSmooth(u_smooth, v, 3); // same fine-level sweep budget
    double r_smooth = mgResidualNorm(u_smooth, v);
    double r_mg = mgVCycle(u_mg, v);
    EXPECT_LT(r_mg, r_smooth);
}

TEST(MgFunctional, RepeatedVCyclesConverge)
{
    Field3d v = randomField(16, 7);
    Field3d u(16);
    double r0 = mgResidualNorm(u, v);
    double r = r0;
    for (int i = 0; i < 12; ++i)
        r = mgVCycle(u, v);
    EXPECT_LT(r, 0.05 * r0);
}

TEST(MgFunctional, TransferOperatorsRoundTripConstants)
{
    // Restriction of a constant is (0.5 + 6/12) = the same constant;
    // prolongation of a constant is that constant.
    Field3d c(8, 2.5);
    Field3d coarse = mgRestrict(c);
    for (double v : coarse.data)
        EXPECT_NEAR(v, 2.5, 1e-12);
    Field3d fine = mgProlong(coarse, 8);
    for (double v : fine.data)
        EXPECT_NEAR(v, 2.5, 1e-12);
}

TEST(IsFunctional, SortsAndPreservesDistributionShape)
{
    auto sorted = isSortFunctional(50000, 1 << 12, 13);
    ASSERT_EQ(sorted.size(), 50000u);
    EXPECT_TRUE(isSorted(sorted));
    // The 4-uniform average concentrates keys near the middle.
    size_t mid = 0;
    for (uint32_t k : sorted) {
        if (k > (1u << 12) / 4 && k < 3u * (1 << 12) / 4)
            ++mid;
    }
    EXPECT_GT(mid, sorted.size() / 2);
}

TEST(IsFunctional, DeterministicInSeed)
{
    auto a = isSortFunctional(10000, 1 << 10, 21);
    auto b = isSortFunctional(10000, 1 << 10, 21);
    EXPECT_EQ(a, b);
}

TEST(MgModel, ScalesWellToEightThenSagsAtSixteen)
{
    NasMgWorkload mg(nasMgClassA());
    auto t = defaultScalingTimes(longsConfig(), {1, 8, 16}, mg);
    EXPECT_GT(t[0] / t[1] / 8.0, 0.85);  // near-linear to 8
    double eff16 = t[0] / t[2] / 16.0;
    EXPECT_LT(eff16, 0.85); // bandwidth-bound second cores
    EXPECT_GT(eff16, 0.4);
}

TEST(IsModel, CommunicationBoundAtScale)
{
    NasIsWorkload is(nasIsClassB());
    auto t = defaultScalingTimes(longsConfig(), {1, 16}, is);
    double eff = t[0] / t[1] / 16.0;
    // The all-to-all key redistribution caps IS scaling hard.
    EXPECT_LT(eff, 0.6);
    EXPECT_GT(eff, 0.2);
}

TEST(IsModel, SysVSensitive)
{
    NasIsWorkload is(nasIsClassB());
    ExperimentConfig cfg;
    cfg.machine = longsConfig();
    cfg.option = table5Options()[0];
    cfg.ranks = 16;
    cfg.sublayer = SubLayer::USysV;
    RunResult fast = runExperiment(cfg, is);
    cfg.sublayer = SubLayer::SysV;
    RunResult slow = runExperiment(cfg, is);
    EXPECT_GT(slow.seconds, fast.seconds);
}

TEST(StreamOps, FunctionalOperations)
{
    std::vector<double> a(64, 1.0), b(64, 2.0), c(64, 3.0);
    EXPECT_DOUBLE_EQ(
        streamOpFunctional(StreamOp::Copy, a, b, c, 2.0),
        64.0 * 1.0); // c = a
    EXPECT_DOUBLE_EQ(
        streamOpFunctional(StreamOp::Scale, a, b, c, 2.0),
        64.0 * 2.0); // b = 2 * c(=1)
    EXPECT_DOUBLE_EQ(
        streamOpFunctional(StreamOp::Add, a, b, c, 2.0),
        64.0 * 3.0); // c = a + b
    EXPECT_DOUBLE_EQ(
        streamOpFunctional(StreamOp::Triad, a, b, c, 2.0),
        64.0 * 8.0); // a = b(=2) + 2 * c(=3)
}

TEST(StreamOps, BytesPerElementAndNames)
{
    EXPECT_DOUBLE_EQ(streamBytesPerElement(StreamOp::Copy), 16.0);
    EXPECT_DOUBLE_EQ(streamBytesPerElement(StreamOp::Triad), 24.0);
    EXPECT_EQ(streamOpName(StreamOp::Scale), "scale");
}

TEST(StreamOps, CopyFasterThanTriadPerElement)
{
    // Same element count, fewer bytes: copy should finish sooner.
    StreamWorkload copy(4u << 20, 8, StreamOp::Copy);
    StreamWorkload triad(4u << 20, 8, StreamOp::Triad);
    ExperimentConfig cfg;
    cfg.machine = dmzConfig();
    cfg.option = {"spread", TaskScheme::Spread, MemPolicy::LocalAlloc};
    cfg.ranks = 1;
    double t_copy = runExperiment(cfg, copy).seconds;
    double t_triad = runExperiment(cfg, triad).seconds;
    EXPECT_NEAR(t_triad / t_copy, 24.0 / 16.0, 0.05);
}

} // namespace
} // namespace mcscope
