/**
 * @file
 * Cost-model behaviour tests for the kernel workloads: each workload
 * builds valid task programs, runs to completion on every machine,
 * and exhibits its defining performance character (bandwidth-bound,
 * cache-friendly, latency-bound, lock-sensitive).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/registry.hh"
#include "kernels/blas1.hh"
#include "kernels/blas3.hh"
#include "kernels/fft.hh"
#include "kernels/nas_cg.hh"
#include "kernels/nas_ft.hh"
#include "kernels/randomaccess.hh"
#include "kernels/stream.hh"
#include "machine/config.hh"

namespace mcscope {
namespace {

ExperimentConfig
config(const MachineConfig &m, int ranks,
       int option_index = 0, SubLayer sl = SubLayer::USysV)
{
    ExperimentConfig c;
    c.machine = m;
    c.option = table5Options()[option_index];
    c.ranks = ranks;
    c.sublayer = sl;
    return c;
}

TEST(StreamModel, SingleCoreBandwidthMatchesCalibration)
{
    StreamWorkload stream(4u << 20, 10);
    RunResult r = runExperiment(config(dmzConfig(), 1), stream);
    ASSERT_TRUE(r.valid);
    double bw = stream.bytesPerIteration() * 10.0 / r.seconds;
    // DMZ: ~3.5 GB/s effective after coherence tax.
    EXPECT_NEAR(bw / 1e9, 3.5, 0.3);

    RunResult rl = runExperiment(config(longsConfig(), 1), stream);
    double bwl = stream.bytesPerIteration() * 10.0 / rl.seconds;
    // Longs: less than half of the expected >4 GB/s (paper 3.3).
    EXPECT_LT(bwl / 1e9, 2.0);
}

TEST(StreamModel, SecondCoreAddsNoBandwidth)
{
    StreamWorkload stream(4u << 20, 10);
    // 2 ranks on one socket (packed) vs on two sockets (spread).
    ExperimentConfig packed = config(dmzConfig(), 2);
    packed.option = {"packed", TaskScheme::Packed,
                     MemPolicy::LocalAlloc};
    ExperimentConfig spread = config(dmzConfig(), 2);
    spread.option = {"spread", TaskScheme::Spread,
                     MemPolicy::LocalAlloc};
    RunResult rp = runExperiment(packed, stream);
    RunResult rs = runExperiment(spread, stream);
    // Same-socket pair shares a controller: ~2x slower than the
    // socket-per-rank placement.
    EXPECT_GT(rp.seconds / rs.seconds, 1.8);
}

TEST(DgemmModel, AcmlNearsPeakAndIsPlacementInsensitive)
{
    DgemmWorkload dgemm(1200, 2, BlasVariant::Acml);
    RunResult r1 = runExperiment(config(dmzConfig(), 1), dgemm);
    double gflops = dgemm.flopsPerIteration() * 2.0 / r1.seconds / 1e9;
    // 4.4 GFlop/s peak at 85% efficiency.
    EXPECT_NEAR(gflops, 3.7, 0.4);

    // Engaging the second core nearly doubles socket throughput.
    ExperimentConfig packed = config(dmzConfig(), 2);
    packed.option = {"packed", TaskScheme::Packed,
                     MemPolicy::LocalAlloc};
    RunResult r2 = runExperiment(packed, dgemm);
    EXPECT_LT(r2.seconds / r1.seconds, 1.15);
}

TEST(DgemmModel, VanillaMuchSlowerThanAcml)
{
    DgemmWorkload acml(1200, 2, BlasVariant::Acml);
    DgemmWorkload vanilla(1200, 2, BlasVariant::Vanilla);
    RunResult ra = runExperiment(config(dmzConfig(), 1), acml);
    RunResult rv = runExperiment(config(dmzConfig(), 1), vanilla);
    EXPECT_GT(rv.seconds / ra.seconds, 3.0);
}

TEST(DaxpyModel, LargeVectorsAreBandwidthBound)
{
    // Doubling the per-socket core count should NOT double DAXPY
    // throughput at large n (bandwidth-bound).
    DaxpyWorkload daxpy(8u << 20, 10, BlasVariant::Acml);
    RunResult r1 = runExperiment(config(dmzConfig(), 1), daxpy);
    ExperimentConfig packed = config(dmzConfig(), 2);
    packed.option = {"packed", TaskScheme::Packed,
                     MemPolicy::LocalAlloc};
    RunResult r2 = runExperiment(packed, daxpy);
    EXPECT_GT(r2.seconds / r1.seconds, 1.6);
}

TEST(DaxpyModel, SmallVectorsAreComputeBound)
{
    // In-cache DAXPY: the second core scales almost perfectly.
    DaxpyWorkload daxpy(8u << 10, 2000, BlasVariant::Acml);
    RunResult r1 = runExperiment(config(dmzConfig(), 1), daxpy);
    ExperimentConfig packed = config(dmzConfig(), 2);
    packed.option = {"packed", TaskScheme::Packed,
                     MemPolicy::LocalAlloc};
    RunResult r2 = runExperiment(packed, daxpy);
    EXPECT_LT(r2.seconds / r1.seconds, 1.25);
}

TEST(RandomAccessModel, LatencyBoundSingleCoreGups)
{
    RandomAccessWorkload ra(256.0e6, 1.0e6, 2);
    RunResult r = runExperiment(config(dmzConfig(), 1), ra);
    double gups = 2.0e6 / r.seconds / 1e9;
    // Opteron-era GUPS: a few hundredths.
    EXPECT_GT(gups, 0.005);
    EXPECT_LT(gups, 0.1);
}

TEST(RandomAccessModel, SecondCoreIsNetGain)
{
    // Unlike STREAM, RandomAccess leaves bandwidth on the table, so
    // the second core helps (Single:Star < 2, Figure 11).  Both runs
    // pinned with local pages, like the HPCC Single/Star modes.
    RandomAccessWorkload ra(256.0e6, 1.0e6, 2);
    ExperimentConfig single = config(dmzConfig(), 1);
    single.option = {"single", TaskScheme::Packed,
                     MemPolicy::LocalAlloc};
    RunResult r1 = runExperiment(single, ra);
    ExperimentConfig packed = config(dmzConfig(), 2);
    packed.option = {"packed", TaskScheme::Packed,
                     MemPolicy::LocalAlloc};
    RunResult r2 = runExperiment(packed, ra);
    EXPECT_LT(r2.seconds / r1.seconds, 1.5);
    EXPECT_GE(r2.seconds / r1.seconds, 1.0);
}

TEST(MpiRandomAccessModel, SysVWrecksIt)
{
    MpiRandomAccessWorkload ra(256.0e6, 1.0e6, 2);
    RunResult fast =
        runExperiment(config(longsConfig(), 8, 0, SubLayer::USysV), ra);
    RunResult slow =
        runExperiment(config(longsConfig(), 8, 0, SubLayer::SysV), ra);
    EXPECT_GT(slow.seconds / fast.seconds, 1.5);
}

TEST(NasModels, EveryClassBuildsAndRuns)
{
    for (const char *name : {"nas-cg-b", "nas-ft-b"}) {
        auto w = makeWorkload(name);
        for (int ranks : {1, 2, 4}) {
            RunResult r =
                runExperiment(config(dmzConfig(), ranks), *w);
            ASSERT_TRUE(r.valid) << name << " ranks=" << ranks;
            EXPECT_GT(r.seconds, 0.0);
        }
    }
}

TEST(NasModels, ClassAIsSmallerThanClassB)
{
    NasCgWorkload a(nasCgClassA());
    NasCgWorkload b(nasCgClassB());
    RunResult ra = runExperiment(config(dmzConfig(), 2), a);
    RunResult rb = runExperiment(config(dmzConfig(), 2), b);
    EXPECT_LT(ra.seconds, rb.seconds / 5.0);
}

TEST(FftModel, PlacementSensitivityIsIntermediate)
{
    // Figure 9/10: DGEMM insensitive, STREAM very sensitive, FFT in
    // between.  Compare localalloc vs membind-at-scale on Longs.
    auto spread_of = [](const Workload &w) {
        OptionSweepResult s = sweepOptions(longsConfig(), {8}, w);
        double lo = 1e300, hi = 0.0;
        for (double v : s.seconds[0]) {
            if (std::isnan(v))
                continue;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        return hi / lo;
    };
    DgemmWorkload dgemm(1000, 1, BlasVariant::Acml);
    FftWorkload fft(1u << 22, 4);
    StreamWorkload stream(4u << 20, 8);
    double s_dgemm = spread_of(dgemm);
    double s_fft = spread_of(fft);
    double s_stream = spread_of(stream);
    EXPECT_LT(s_dgemm, s_fft);
    EXPECT_LT(s_fft, s_stream + 1e-9);
    EXPECT_LT(s_dgemm, 1.3);
    EXPECT_GT(s_stream, 2.0);
}

} // namespace
} // namespace mcscope
