/**
 * @file
 * Tests for the NAS EP kernel: Marsaglia-polar statistics in the
 * functional version, perfect scaling in the cost model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hh"
#include "kernels/nas_ep.hh"
#include "machine/config.hh"

namespace mcscope {
namespace {

TEST(EpFunctional, AcceptanceRateIsPiOverFour)
{
    EpResult res = epFunctional(200000, 7);
    double rate = static_cast<double>(res.accepted) / res.pairs;
    EXPECT_NEAR(rate, 3.14159265 / 4.0, 0.01);
}

TEST(EpFunctional, DeviatesAreZeroMeanGaussian)
{
    EpResult res = epFunctional(400000, 11);
    // Mean of the accepted Gaussian deviates ~ 0.
    EXPECT_NEAR(res.sumX / res.accepted, 0.0, 0.02);
    EXPECT_NEAR(res.sumY / res.accepted, 0.0, 0.02);
}

TEST(EpFunctional, DeterministicInSeed)
{
    EpResult a = epFunctional(50000, 42);
    EpResult b = epFunctional(50000, 42);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_DOUBLE_EQ(a.sumX, b.sumX);
    EpResult c = epFunctional(50000, 43);
    EXPECT_NE(a.accepted, c.accepted);
}

TEST(EpModel, ScalesLinearlyWhereCgCollapses)
{
    NasEpWorkload ep(nasEpClassA());
    auto t = defaultScalingTimes(longsConfig(), {1, 16}, ep);
    double eff = t[0] / t[1] / 16.0;
    // EP is the control: no memory, no ladder, near-ideal efficiency
    // on the very machine where CG drops to ~0.4.
    EXPECT_GT(eff, 0.90);
    EXPECT_LT(eff, 1.15);
}

TEST(EpModel, PlacementInsensitive)
{
    NasEpWorkload ep(nasEpClassA());
    OptionSweepResult sweep = sweepOptions(longsConfig(), {8}, ep);
    double lo = 1e300, hi = 0.0;
    for (double v : sweep.seconds[0]) {
        if (std::isnan(v))
            continue;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_LT(hi / lo, 1.15);
}

} // namespace
} // namespace mcscope
