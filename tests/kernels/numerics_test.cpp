/**
 * @file
 * Functional-correctness tests for the kernel implementations: the
 * real math behind the cost models (FFT vs. DFT, blocked DGEMM vs.
 * naive, LU solves, CG convergence, GUPS verification, transpose).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/blas1.hh"
#include "kernels/blas3.hh"
#include "kernels/fft.hh"
#include "kernels/hpl.hh"
#include "kernels/ptrans.hh"
#include "kernels/randomaccess.hh"
#include "kernels/sparse.hh"
#include "kernels/stream.hh"
#include "util/rng.hh"

namespace mcscope {
namespace {

TEST(StreamFunctional, TriadComputesCorrectly)
{
    std::vector<double> a(100, 0.0), b(100, 2.0), c(100, 3.0);
    double sum = streamTriadFunctional(a, b, c, 4.0);
    for (double v : a)
        EXPECT_DOUBLE_EQ(v, 14.0);
    EXPECT_DOUBLE_EQ(sum, 1400.0);
}

TEST(DaxpyFunctional, Computes)
{
    std::vector<double> x = {1.0, 2.0, 3.0};
    std::vector<double> y = {10.0, 20.0, 30.0};
    double sum = daxpyFunctional(2.0, x, y);
    EXPECT_DOUBLE_EQ(y[0], 12.0);
    EXPECT_DOUBLE_EQ(y[1], 24.0);
    EXPECT_DOUBLE_EQ(y[2], 36.0);
    EXPECT_DOUBLE_EQ(sum, 72.0);
}

TEST(DgemmFunctional, MatchesNaive)
{
    Rng rng(7);
    const size_t m = 37, n = 29, k = 53;
    std::vector<double> a(m * k), b(k * n), c1(m * n), c2(m * n);
    for (double *v : {a.data(), b.data()}) {
        (void)v;
    }
    for (auto &v : a)
        v = rng.uniform(-1.0, 1.0);
    for (auto &v : b)
        v = rng.uniform(-1.0, 1.0);
    for (size_t i = 0; i < m * n; ++i)
        c1[i] = c2[i] = rng.uniform(-1.0, 1.0);

    dgemmFunctional(m, n, k, 1.5, a, b, 0.5, c1);
    dgemmNaive(m, n, k, 1.5, a, b, 0.5, c2);
    for (size_t i = 0; i < m * n; ++i)
        EXPECT_NEAR(c1[i], c2[i], 1e-10);
}

TEST(FftFunctional, MatchesReferenceDft)
{
    Rng rng(13);
    std::vector<Complex> data(64);
    for (auto &v : data)
        v = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    std::vector<Complex> ref = dftReference(data);
    std::vector<Complex> fast = data;
    fft1d(fast);
    for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(fast[i].real(), ref[i].real(), 1e-9);
        EXPECT_NEAR(fast[i].imag(), ref[i].imag(), 1e-9);
    }
}

TEST(FftFunctional, RoundTripIsIdentity)
{
    Rng rng(17);
    std::vector<Complex> data(256);
    for (auto &v : data)
        v = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    std::vector<Complex> copy = data;
    fft1d(copy);
    fft1d(copy, /*inverse=*/true);
    for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(copy[i].real(), data[i].real(), 1e-10);
        EXPECT_NEAR(copy[i].imag(), data[i].imag(), 1e-10);
    }
}

TEST(FftFunctional, ParsevalHoldsIn3d)
{
    Rng rng(19);
    const size_t nx = 8, ny = 4, nz = 4;
    std::vector<Complex> data(nx * ny * nz);
    double time_energy = 0.0;
    for (auto &v : data) {
        v = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
        time_energy += std::norm(v);
    }
    fft3d(data, nx, ny, nz);
    double freq_energy = 0.0;
    for (const auto &v : data)
        freq_energy += std::norm(v);
    EXPECT_NEAR(freq_energy,
                time_energy * static_cast<double>(nx * ny * nz),
                1e-6 * freq_energy);
}

TEST(FftFunctional, FlopCountFormula)
{
    EXPECT_DOUBLE_EQ(fftFlops(1.0), 0.0);
    EXPECT_DOUBLE_EQ(fftFlops(8.0), 5.0 * 8.0 * 3.0);
}

TEST(RandomAccessFunctional, DoubleUpdateRestoresTable)
{
    std::vector<uint64_t> table(1024);
    for (size_t i = 0; i < table.size(); ++i)
        table[i] = i;
    uint64_t before = 0;
    for (uint64_t v : table)
        before ^= v;
    // XOR updates are involutive when replayed with the same stream.
    randomAccessFunctional(table, 5000);
    randomAccessFunctional(table, 5000);
    uint64_t after = 0;
    for (uint64_t v : table)
        after ^= v;
    EXPECT_EQ(before, after);
    for (size_t i = 0; i < table.size(); ++i)
        EXPECT_EQ(table[i], i);
}

TEST(RandomAccessFunctional, StreamVisitsManySlots)
{
    std::vector<uint64_t> table(4096, 0);
    randomAccessFunctional(table, 20000);
    size_t touched = 0;
    for (uint64_t v : table)
        touched += (v != 0);
    EXPECT_GT(touched, table.size() / 2);
}

TEST(TransposeFunctional, Transposes)
{
    const size_t n = 17;
    std::vector<double> in(n * n), out(n * n);
    for (size_t i = 0; i < n * n; ++i)
        in[i] = static_cast<double>(i);
    transposeFunctional(in, out, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            EXPECT_DOUBLE_EQ(out[j * n + i], in[i * n + j]);
}

TEST(LuFunctional, SolvesRandomSystem)
{
    Rng rng(23);
    const size_t n = 24;
    std::vector<double> a(n * n);
    for (auto &v : a)
        v = rng.uniform(-1.0, 1.0);
    for (size_t i = 0; i < n; ++i)
        a[i * n + i] += 4.0; // keep it comfortably nonsingular
    std::vector<double> x_true(n);
    for (auto &v : x_true)
        v = rng.uniform(-2.0, 2.0);
    // b = A x.
    std::vector<double> b(n, 0.0);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            b[i] += a[i * n + j] * x_true[j];

    std::vector<double> lu = a;
    auto pivots = luFactorFunctional(lu, n);
    auto x = luSolveFunctional(lu, pivots, b, n);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(LuFunctional, PivotsKeepStability)
{
    // A matrix that breaks LU without pivoting: tiny leading entry.
    std::vector<double> a = {1e-18, 1.0, 1.0, 1.0};
    std::vector<double> lu = a;
    auto pivots = luFactorFunctional(lu, 2);
    EXPECT_EQ(pivots[0], 1u); // swapped
    auto x = luSolveFunctional(lu, pivots, {1.0, 2.0}, 2);
    EXPECT_NEAR(a[0] * x[0] + a[1] * x[1], 1.0, 1e-9);
    EXPECT_NEAR(a[2] * x[0] + a[3] * x[1], 2.0, 1e-9);
}

TEST(SparseFunctional, SpdMatrixIsSymmetricAndDominant)
{
    CsrMatrix m = makeSpdMatrix(200, 6, 31);
    m.validate();
    // Symmetry: A x . y == A y . x for random vectors.
    Rng rng(37);
    std::vector<double> x(200), y(200), ax(200), ay(200);
    for (size_t i = 0; i < 200; ++i) {
        x[i] = rng.uniform(-1.0, 1.0);
        y[i] = rng.uniform(-1.0, 1.0);
    }
    m.multiply(x, ax);
    m.multiply(y, ay);
    EXPECT_NEAR(dotProduct(ax, y), dotProduct(ay, x), 1e-9);
}

TEST(SparseFunctional, CgSolvesSpdSystem)
{
    CsrMatrix m = makeSpdMatrix(300, 8, 41);
    Rng rng(43);
    std::vector<double> b(300);
    for (auto &v : b)
        v = rng.uniform(-1.0, 1.0);
    CgResult res = conjugateGradient(m, b, 500, 1e-10);
    EXPECT_LT(res.residualNorm, 1e-9);
    // Verify the solution against the operator directly.
    std::vector<double> ax(300);
    m.multiply(res.x, ax);
    for (size_t i = 0; i < 300; ++i)
        EXPECT_NEAR(ax[i], b[i], 1e-6);
}

TEST(SparseFunctional, CgIterationCountReasonable)
{
    // Diagonally dominant => well conditioned => fast convergence.
    CsrMatrix m = makeSpdMatrix(500, 10, 47);
    std::vector<double> b(500, 1.0);
    CgResult res = conjugateGradient(m, b, 500, 1e-8);
    EXPECT_LT(res.iterations, 60);
    EXPECT_GT(res.iterations, 2);
}

} // namespace
} // namespace mcscope
