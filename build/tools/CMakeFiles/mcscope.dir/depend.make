# Empty dependencies file for mcscope.
# This may be replaced when dependencies are built.
