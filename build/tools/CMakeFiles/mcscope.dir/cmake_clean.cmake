file(REMOVE_RECURSE
  "CMakeFiles/mcscope.dir/mcscope_main.cc.o"
  "CMakeFiles/mcscope.dir/mcscope_main.cc.o.d"
  "mcscope"
  "mcscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
