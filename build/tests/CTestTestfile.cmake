# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fairshare_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/numerics_test[1]_include.cmake")
include("/root/repo/build/tests/workload_model_test[1]_include.cmake")
include("/root/repo/build/tests/md_test[1]_include.cmake")
include("/root/repo/build/tests/pop_test[1]_include.cmake")
include("/root/repo/build/tests/app_model_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shapes_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/cli_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/nas_ep_test[1]_include.cmake")
include("/root/repo/build/tests/engine_stress_test[1]_include.cmake")
include("/root/repo/build/tests/nas_mg_is_test[1]_include.cmake")
include("/root/repo/build/tests/grid_halo_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/extras_test[1]_include.cmake")
include("/root/repo/build/tests/comm_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/cross_validation_test[1]_include.cmake")
