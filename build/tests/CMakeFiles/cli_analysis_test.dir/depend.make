# Empty dependencies file for cli_analysis_test.
# This may be replaced when dependencies are built.
