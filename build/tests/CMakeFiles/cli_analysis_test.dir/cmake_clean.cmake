file(REMOVE_RECURSE
  "CMakeFiles/cli_analysis_test.dir/core/cli_analysis_test.cpp.o"
  "CMakeFiles/cli_analysis_test.dir/core/cli_analysis_test.cpp.o.d"
  "cli_analysis_test"
  "cli_analysis_test.pdb"
  "cli_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
