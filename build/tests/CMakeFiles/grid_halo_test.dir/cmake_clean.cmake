file(REMOVE_RECURSE
  "CMakeFiles/grid_halo_test.dir/simmpi/grid_halo_test.cpp.o"
  "CMakeFiles/grid_halo_test.dir/simmpi/grid_halo_test.cpp.o.d"
  "grid_halo_test"
  "grid_halo_test.pdb"
  "grid_halo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_halo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
