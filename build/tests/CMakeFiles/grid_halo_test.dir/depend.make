# Empty dependencies file for grid_halo_test.
# This may be replaced when dependencies are built.
