file(REMOVE_RECURSE
  "CMakeFiles/comm_matrix_test.dir/simmpi/comm_matrix_test.cpp.o"
  "CMakeFiles/comm_matrix_test.dir/simmpi/comm_matrix_test.cpp.o.d"
  "comm_matrix_test"
  "comm_matrix_test.pdb"
  "comm_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
