file(REMOVE_RECURSE
  "CMakeFiles/nas_mg_is_test.dir/kernels/nas_mg_is_test.cpp.o"
  "CMakeFiles/nas_mg_is_test.dir/kernels/nas_mg_is_test.cpp.o.d"
  "nas_mg_is_test"
  "nas_mg_is_test.pdb"
  "nas_mg_is_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_mg_is_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
