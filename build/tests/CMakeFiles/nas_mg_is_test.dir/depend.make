# Empty dependencies file for nas_mg_is_test.
# This may be replaced when dependencies are built.
