file(REMOVE_RECURSE
  "CMakeFiles/nas_ep_test.dir/kernels/nas_ep_test.cpp.o"
  "CMakeFiles/nas_ep_test.dir/kernels/nas_ep_test.cpp.o.d"
  "nas_ep_test"
  "nas_ep_test.pdb"
  "nas_ep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_ep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
