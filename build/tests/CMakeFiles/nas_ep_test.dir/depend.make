# Empty dependencies file for nas_ep_test.
# This may be replaced when dependencies are built.
