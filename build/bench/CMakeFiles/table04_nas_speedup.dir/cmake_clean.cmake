file(REMOVE_RECURSE
  "CMakeFiles/table04_nas_speedup.dir/table04_nas_speedup.cpp.o"
  "CMakeFiles/table04_nas_speedup.dir/table04_nas_speedup.cpp.o.d"
  "table04_nas_speedup"
  "table04_nas_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_nas_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
