# Empty compiler generated dependencies file for table04_nas_speedup.
# This may be replaced when dependencies are built.
