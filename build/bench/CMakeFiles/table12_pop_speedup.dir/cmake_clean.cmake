file(REMOVE_RECURSE
  "CMakeFiles/table12_pop_speedup.dir/table12_pop_speedup.cpp.o"
  "CMakeFiles/table12_pop_speedup.dir/table12_pop_speedup.cpp.o.d"
  "table12_pop_speedup"
  "table12_pop_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_pop_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
