# Empty compiler generated dependencies file for table12_pop_speedup.
# This may be replaced when dependencies are built.
