# Empty compiler generated dependencies file for ext_comm_matrix.
# This may be replaced when dependencies are built.
