file(REMOVE_RECURSE
  "CMakeFiles/ext_comm_matrix.dir/ext_comm_matrix.cpp.o"
  "CMakeFiles/ext_comm_matrix.dir/ext_comm_matrix.cpp.o.d"
  "ext_comm_matrix"
  "ext_comm_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_comm_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
