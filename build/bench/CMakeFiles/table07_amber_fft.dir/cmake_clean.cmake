file(REMOVE_RECURSE
  "CMakeFiles/table07_amber_fft.dir/table07_amber_fft.cpp.o"
  "CMakeFiles/table07_amber_fft.dir/table07_amber_fft.cpp.o.d"
  "table07_amber_fft"
  "table07_amber_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_amber_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
