# Empty compiler generated dependencies file for table07_amber_fft.
# This may be replaced when dependencies are built.
