# Empty compiler generated dependencies file for fig03_stream_per_core.
# This may be replaced when dependencies are built.
