file(REMOVE_RECURSE
  "CMakeFiles/fig03_stream_per_core.dir/fig03_stream_per_core.cpp.o"
  "CMakeFiles/fig03_stream_per_core.dir/fig03_stream_per_core.cpp.o.d"
  "fig03_stream_per_core"
  "fig03_stream_per_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_stream_per_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
