
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03_stream_per_core.cpp" "bench/CMakeFiles/fig03_stream_per_core.dir/fig03_stream_per_core.cpp.o" "gcc" "bench/CMakeFiles/fig03_stream_per_core.dir/fig03_stream_per_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mcscope_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/mcscope_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/mcscope_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/affinity/CMakeFiles/mcscope_affinity.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/mcscope_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
