# Empty dependencies file for fig07_dgemm_vanilla.
# This may be replaced when dependencies are built.
