file(REMOVE_RECURSE
  "CMakeFiles/fig07_dgemm_vanilla.dir/fig07_dgemm_vanilla.cpp.o"
  "CMakeFiles/fig07_dgemm_vanilla.dir/fig07_dgemm_vanilla.cpp.o.d"
  "fig07_dgemm_vanilla"
  "fig07_dgemm_vanilla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dgemm_vanilla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
