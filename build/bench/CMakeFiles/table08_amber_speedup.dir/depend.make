# Empty dependencies file for table08_amber_speedup.
# This may be replaced when dependencies are built.
