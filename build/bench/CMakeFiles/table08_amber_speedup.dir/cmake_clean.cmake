file(REMOVE_RECURSE
  "CMakeFiles/table08_amber_speedup.dir/table08_amber_speedup.cpp.o"
  "CMakeFiles/table08_amber_speedup.dir/table08_amber_speedup.cpp.o.d"
  "table08_amber_speedup"
  "table08_amber_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_amber_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
