file(REMOVE_RECURSE
  "CMakeFiles/ext_npb_suite.dir/ext_npb_suite.cpp.o"
  "CMakeFiles/ext_npb_suite.dir/ext_npb_suite.cpp.o.d"
  "ext_npb_suite"
  "ext_npb_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_npb_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
