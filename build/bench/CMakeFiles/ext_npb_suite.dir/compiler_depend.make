# Empty compiler generated dependencies file for ext_npb_suite.
# This may be replaced when dependencies are built.
