# Empty compiler generated dependencies file for fig02_stream_bandwidth.
# This may be replaced when dependencies are built.
