file(REMOVE_RECURSE
  "CMakeFiles/fig02_stream_bandwidth.dir/fig02_stream_bandwidth.cpp.o"
  "CMakeFiles/fig02_stream_bandwidth.dir/fig02_stream_bandwidth.cpp.o.d"
  "fig02_stream_bandwidth"
  "fig02_stream_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_stream_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
