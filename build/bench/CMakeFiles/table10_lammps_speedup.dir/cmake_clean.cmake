file(REMOVE_RECURSE
  "CMakeFiles/table10_lammps_speedup.dir/table10_lammps_speedup.cpp.o"
  "CMakeFiles/table10_lammps_speedup.dir/table10_lammps_speedup.cpp.o.d"
  "table10_lammps_speedup"
  "table10_lammps_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_lammps_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
