# Empty compiler generated dependencies file for table10_lammps_speedup.
# This may be replaced when dependencies are built.
