file(REMOVE_RECURSE
  "CMakeFiles/fig09_single_star_kernels.dir/fig09_single_star_kernels.cpp.o"
  "CMakeFiles/fig09_single_star_kernels.dir/fig09_single_star_kernels.cpp.o.d"
  "fig09_single_star_kernels"
  "fig09_single_star_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_single_star_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
