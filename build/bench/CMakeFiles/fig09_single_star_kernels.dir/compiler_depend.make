# Empty compiler generated dependencies file for fig09_single_star_kernels.
# This may be replaced when dependencies are built.
