# Empty dependencies file for table13_pop_baroclinic.
# This may be replaced when dependencies are built.
