file(REMOVE_RECURSE
  "CMakeFiles/table13_pop_baroclinic.dir/table13_pop_baroclinic.cpp.o"
  "CMakeFiles/table13_pop_baroclinic.dir/table13_pop_baroclinic.cpp.o.d"
  "table13_pop_baroclinic"
  "table13_pop_baroclinic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table13_pop_baroclinic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
