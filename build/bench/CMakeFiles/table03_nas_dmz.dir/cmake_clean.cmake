file(REMOVE_RECURSE
  "CMakeFiles/table03_nas_dmz.dir/table03_nas_dmz.cpp.o"
  "CMakeFiles/table03_nas_dmz.dir/table03_nas_dmz.cpp.o.d"
  "table03_nas_dmz"
  "table03_nas_dmz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_nas_dmz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
