# Empty dependencies file for table03_nas_dmz.
# This may be replaced when dependencies are built.
