# Empty dependencies file for fig17_openmpi_exchange_affinity.
# This may be replaced when dependencies are built.
