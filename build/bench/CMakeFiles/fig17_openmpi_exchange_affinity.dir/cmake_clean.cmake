file(REMOVE_RECURSE
  "CMakeFiles/fig17_openmpi_exchange_affinity.dir/fig17_openmpi_exchange_affinity.cpp.o"
  "CMakeFiles/fig17_openmpi_exchange_affinity.dir/fig17_openmpi_exchange_affinity.cpp.o.d"
  "fig17_openmpi_exchange_affinity"
  "fig17_openmpi_exchange_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_openmpi_exchange_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
