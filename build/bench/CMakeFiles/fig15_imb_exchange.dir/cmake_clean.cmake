file(REMOVE_RECURSE
  "CMakeFiles/fig15_imb_exchange.dir/fig15_imb_exchange.cpp.o"
  "CMakeFiles/fig15_imb_exchange.dir/fig15_imb_exchange.cpp.o.d"
  "fig15_imb_exchange"
  "fig15_imb_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_imb_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
