# Empty dependencies file for fig15_imb_exchange.
# This may be replaced when dependencies are built.
