# Empty compiler generated dependencies file for fig11_randomaccess.
# This may be replaced when dependencies are built.
