file(REMOVE_RECURSE
  "CMakeFiles/fig11_randomaccess.dir/fig11_randomaccess.cpp.o"
  "CMakeFiles/fig11_randomaccess.dir/fig11_randomaccess.cpp.o.d"
  "fig11_randomaccess"
  "fig11_randomaccess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_randomaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
