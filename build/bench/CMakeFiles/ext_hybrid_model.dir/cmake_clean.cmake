file(REMOVE_RECURSE
  "CMakeFiles/ext_hybrid_model.dir/ext_hybrid_model.cpp.o"
  "CMakeFiles/ext_hybrid_model.dir/ext_hybrid_model.cpp.o.d"
  "ext_hybrid_model"
  "ext_hybrid_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hybrid_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
