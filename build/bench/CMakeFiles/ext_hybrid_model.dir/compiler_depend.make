# Empty compiler generated dependencies file for ext_hybrid_model.
# This may be replaced when dependencies are built.
