file(REMOVE_RECURSE
  "CMakeFiles/fig04_daxpy_acml.dir/fig04_daxpy_acml.cpp.o"
  "CMakeFiles/fig04_daxpy_acml.dir/fig04_daxpy_acml.cpp.o.d"
  "fig04_daxpy_acml"
  "fig04_daxpy_acml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_daxpy_acml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
