# Empty dependencies file for fig04_daxpy_acml.
# This may be replaced when dependencies are built.
