# Empty compiler generated dependencies file for table14_pop_barotropic.
# This may be replaced when dependencies are built.
