file(REMOVE_RECURSE
  "CMakeFiles/table14_pop_barotropic.dir/table14_pop_barotropic.cpp.o"
  "CMakeFiles/table14_pop_barotropic.dir/table14_pop_barotropic.cpp.o.d"
  "table14_pop_barotropic"
  "table14_pop_barotropic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table14_pop_barotropic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
