file(REMOVE_RECURSE
  "CMakeFiles/table02_nas_longs.dir/table02_nas_longs.cpp.o"
  "CMakeFiles/table02_nas_longs.dir/table02_nas_longs.cpp.o.d"
  "table02_nas_longs"
  "table02_nas_longs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_nas_longs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
