# Empty compiler generated dependencies file for table02_nas_longs.
# This may be replaced when dependencies are built.
