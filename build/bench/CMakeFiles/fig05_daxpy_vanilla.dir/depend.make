# Empty dependencies file for fig05_daxpy_vanilla.
# This may be replaced when dependencies are built.
