file(REMOVE_RECURSE
  "CMakeFiles/fig05_daxpy_vanilla.dir/fig05_daxpy_vanilla.cpp.o"
  "CMakeFiles/fig05_daxpy_vanilla.dir/fig05_daxpy_vanilla.cpp.o.d"
  "fig05_daxpy_vanilla"
  "fig05_daxpy_vanilla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_daxpy_vanilla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
