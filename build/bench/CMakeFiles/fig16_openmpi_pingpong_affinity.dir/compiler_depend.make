# Empty compiler generated dependencies file for fig16_openmpi_pingpong_affinity.
# This may be replaced when dependencies are built.
