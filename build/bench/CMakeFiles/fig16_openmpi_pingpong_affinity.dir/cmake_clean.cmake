file(REMOVE_RECURSE
  "CMakeFiles/fig16_openmpi_pingpong_affinity.dir/fig16_openmpi_pingpong_affinity.cpp.o"
  "CMakeFiles/fig16_openmpi_pingpong_affinity.dir/fig16_openmpi_pingpong_affinity.cpp.o.d"
  "fig16_openmpi_pingpong_affinity"
  "fig16_openmpi_pingpong_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_openmpi_pingpong_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
