# Empty dependencies file for fig06_dgemm_acml.
# This may be replaced when dependencies are built.
