file(REMOVE_RECURSE
  "CMakeFiles/fig06_dgemm_acml.dir/fig06_dgemm_acml.cpp.o"
  "CMakeFiles/fig06_dgemm_acml.dir/fig06_dgemm_acml.cpp.o.d"
  "fig06_dgemm_acml"
  "fig06_dgemm_acml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_dgemm_acml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
