# Empty compiler generated dependencies file for table09_jac_overall.
# This may be replaced when dependencies are built.
