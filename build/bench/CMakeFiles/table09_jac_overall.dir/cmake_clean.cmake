file(REMOVE_RECURSE
  "CMakeFiles/table09_jac_overall.dir/table09_jac_overall.cpp.o"
  "CMakeFiles/table09_jac_overall.dir/table09_jac_overall.cpp.o.d"
  "table09_jac_overall"
  "table09_jac_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_jac_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
