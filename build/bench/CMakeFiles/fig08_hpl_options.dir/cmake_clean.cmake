file(REMOVE_RECURSE
  "CMakeFiles/fig08_hpl_options.dir/fig08_hpl_options.cpp.o"
  "CMakeFiles/fig08_hpl_options.dir/fig08_hpl_options.cpp.o.d"
  "fig08_hpl_options"
  "fig08_hpl_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_hpl_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
