# Empty compiler generated dependencies file for fig08_hpl_options.
# This may be replaced when dependencies are built.
