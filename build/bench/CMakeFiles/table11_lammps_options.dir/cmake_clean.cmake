file(REMOVE_RECURSE
  "CMakeFiles/table11_lammps_options.dir/table11_lammps_options.cpp.o"
  "CMakeFiles/table11_lammps_options.dir/table11_lammps_options.cpp.o.d"
  "table11_lammps_options"
  "table11_lammps_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_lammps_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
