# Empty compiler generated dependencies file for table11_lammps_options.
# This may be replaced when dependencies are built.
