file(REMOVE_RECURSE
  "CMakeFiles/fig12_ptrans.dir/fig12_ptrans.cpp.o"
  "CMakeFiles/fig12_ptrans.dir/fig12_ptrans.cpp.o.d"
  "fig12_ptrans"
  "fig12_ptrans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ptrans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
