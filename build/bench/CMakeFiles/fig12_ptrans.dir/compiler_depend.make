# Empty compiler generated dependencies file for fig12_ptrans.
# This may be replaced when dependencies are built.
