file(REMOVE_RECURSE
  "CMakeFiles/fig14_imb_pingpong.dir/fig14_imb_pingpong.cpp.o"
  "CMakeFiles/fig14_imb_pingpong.dir/fig14_imb_pingpong.cpp.o.d"
  "fig14_imb_pingpong"
  "fig14_imb_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_imb_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
