# Empty dependencies file for fig14_imb_pingpong.
# This may be replaced when dependencies are built.
