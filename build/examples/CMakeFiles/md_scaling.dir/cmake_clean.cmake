file(REMOVE_RECURSE
  "CMakeFiles/md_scaling.dir/md_scaling.cpp.o"
  "CMakeFiles/md_scaling.dir/md_scaling.cpp.o.d"
  "md_scaling"
  "md_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
