# Empty compiler generated dependencies file for md_scaling.
# This may be replaced when dependencies are built.
