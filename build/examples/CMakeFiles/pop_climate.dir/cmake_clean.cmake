file(REMOVE_RECURSE
  "CMakeFiles/pop_climate.dir/pop_climate.cpp.o"
  "CMakeFiles/pop_climate.dir/pop_climate.cpp.o.d"
  "pop_climate"
  "pop_climate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop_climate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
