# Empty compiler generated dependencies file for pop_climate.
# This may be replaced when dependencies are built.
