file(REMOVE_RECURSE
  "CMakeFiles/mcscope_util.dir/csv.cc.o"
  "CMakeFiles/mcscope_util.dir/csv.cc.o.d"
  "CMakeFiles/mcscope_util.dir/logging.cc.o"
  "CMakeFiles/mcscope_util.dir/logging.cc.o.d"
  "CMakeFiles/mcscope_util.dir/str.cc.o"
  "CMakeFiles/mcscope_util.dir/str.cc.o.d"
  "CMakeFiles/mcscope_util.dir/table.cc.o"
  "CMakeFiles/mcscope_util.dir/table.cc.o.d"
  "libmcscope_util.a"
  "libmcscope_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcscope_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
