# Empty dependencies file for mcscope_util.
# This may be replaced when dependencies are built.
