file(REMOVE_RECURSE
  "libmcscope_util.a"
)
