file(REMOVE_RECURSE
  "libmcscope_machine.a"
)
