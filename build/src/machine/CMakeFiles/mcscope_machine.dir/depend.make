# Empty dependencies file for mcscope_machine.
# This may be replaced when dependencies are built.
