
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/cache.cc" "src/machine/CMakeFiles/mcscope_machine.dir/cache.cc.o" "gcc" "src/machine/CMakeFiles/mcscope_machine.dir/cache.cc.o.d"
  "/root/repo/src/machine/config.cc" "src/machine/CMakeFiles/mcscope_machine.dir/config.cc.o" "gcc" "src/machine/CMakeFiles/mcscope_machine.dir/config.cc.o.d"
  "/root/repo/src/machine/machine.cc" "src/machine/CMakeFiles/mcscope_machine.dir/machine.cc.o" "gcc" "src/machine/CMakeFiles/mcscope_machine.dir/machine.cc.o.d"
  "/root/repo/src/machine/topology.cc" "src/machine/CMakeFiles/mcscope_machine.dir/topology.cc.o" "gcc" "src/machine/CMakeFiles/mcscope_machine.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcscope_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
