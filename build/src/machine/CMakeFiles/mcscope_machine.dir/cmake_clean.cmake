file(REMOVE_RECURSE
  "CMakeFiles/mcscope_machine.dir/cache.cc.o"
  "CMakeFiles/mcscope_machine.dir/cache.cc.o.d"
  "CMakeFiles/mcscope_machine.dir/config.cc.o"
  "CMakeFiles/mcscope_machine.dir/config.cc.o.d"
  "CMakeFiles/mcscope_machine.dir/machine.cc.o"
  "CMakeFiles/mcscope_machine.dir/machine.cc.o.d"
  "CMakeFiles/mcscope_machine.dir/topology.cc.o"
  "CMakeFiles/mcscope_machine.dir/topology.cc.o.d"
  "libmcscope_machine.a"
  "libmcscope_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcscope_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
