file(REMOVE_RECURSE
  "libmcscope_core.a"
)
