# Empty compiler generated dependencies file for mcscope_core.
# This may be replaced when dependencies are built.
