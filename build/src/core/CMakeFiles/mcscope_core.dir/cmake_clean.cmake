file(REMOVE_RECURSE
  "CMakeFiles/mcscope_core.dir/analysis.cc.o"
  "CMakeFiles/mcscope_core.dir/analysis.cc.o.d"
  "CMakeFiles/mcscope_core.dir/calibration.cc.o"
  "CMakeFiles/mcscope_core.dir/calibration.cc.o.d"
  "CMakeFiles/mcscope_core.dir/cli.cc.o"
  "CMakeFiles/mcscope_core.dir/cli.cc.o.d"
  "CMakeFiles/mcscope_core.dir/experiment.cc.o"
  "CMakeFiles/mcscope_core.dir/experiment.cc.o.d"
  "CMakeFiles/mcscope_core.dir/hybrid.cc.o"
  "CMakeFiles/mcscope_core.dir/hybrid.cc.o.d"
  "CMakeFiles/mcscope_core.dir/metrics.cc.o"
  "CMakeFiles/mcscope_core.dir/metrics.cc.o.d"
  "CMakeFiles/mcscope_core.dir/registry.cc.o"
  "CMakeFiles/mcscope_core.dir/registry.cc.o.d"
  "CMakeFiles/mcscope_core.dir/report.cc.o"
  "CMakeFiles/mcscope_core.dir/report.cc.o.d"
  "libmcscope_core.a"
  "libmcscope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcscope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
