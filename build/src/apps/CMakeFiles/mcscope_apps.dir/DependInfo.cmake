
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/md/amber.cc" "src/apps/CMakeFiles/mcscope_apps.dir/md/amber.cc.o" "gcc" "src/apps/CMakeFiles/mcscope_apps.dir/md/amber.cc.o.d"
  "/root/repo/src/apps/md/cells.cc" "src/apps/CMakeFiles/mcscope_apps.dir/md/cells.cc.o" "gcc" "src/apps/CMakeFiles/mcscope_apps.dir/md/cells.cc.o.d"
  "/root/repo/src/apps/md/engine.cc" "src/apps/CMakeFiles/mcscope_apps.dir/md/engine.cc.o" "gcc" "src/apps/CMakeFiles/mcscope_apps.dir/md/engine.cc.o.d"
  "/root/repo/src/apps/md/forcefield.cc" "src/apps/CMakeFiles/mcscope_apps.dir/md/forcefield.cc.o" "gcc" "src/apps/CMakeFiles/mcscope_apps.dir/md/forcefield.cc.o.d"
  "/root/repo/src/apps/md/gb.cc" "src/apps/CMakeFiles/mcscope_apps.dir/md/gb.cc.o" "gcc" "src/apps/CMakeFiles/mcscope_apps.dir/md/gb.cc.o.d"
  "/root/repo/src/apps/md/lammps.cc" "src/apps/CMakeFiles/mcscope_apps.dir/md/lammps.cc.o" "gcc" "src/apps/CMakeFiles/mcscope_apps.dir/md/lammps.cc.o.d"
  "/root/repo/src/apps/md/pme.cc" "src/apps/CMakeFiles/mcscope_apps.dir/md/pme.cc.o" "gcc" "src/apps/CMakeFiles/mcscope_apps.dir/md/pme.cc.o.d"
  "/root/repo/src/apps/pop/grid.cc" "src/apps/CMakeFiles/mcscope_apps.dir/pop/grid.cc.o" "gcc" "src/apps/CMakeFiles/mcscope_apps.dir/pop/grid.cc.o.d"
  "/root/repo/src/apps/pop/pop.cc" "src/apps/CMakeFiles/mcscope_apps.dir/pop/pop.cc.o" "gcc" "src/apps/CMakeFiles/mcscope_apps.dir/pop/pop.cc.o.d"
  "/root/repo/src/apps/pop/solver.cc" "src/apps/CMakeFiles/mcscope_apps.dir/pop/solver.cc.o" "gcc" "src/apps/CMakeFiles/mcscope_apps.dir/pop/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/mcscope_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/mcscope_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/mcscope_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/affinity/CMakeFiles/mcscope_affinity.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcscope_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
