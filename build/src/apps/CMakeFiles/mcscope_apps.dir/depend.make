# Empty dependencies file for mcscope_apps.
# This may be replaced when dependencies are built.
