file(REMOVE_RECURSE
  "CMakeFiles/mcscope_apps.dir/md/amber.cc.o"
  "CMakeFiles/mcscope_apps.dir/md/amber.cc.o.d"
  "CMakeFiles/mcscope_apps.dir/md/cells.cc.o"
  "CMakeFiles/mcscope_apps.dir/md/cells.cc.o.d"
  "CMakeFiles/mcscope_apps.dir/md/engine.cc.o"
  "CMakeFiles/mcscope_apps.dir/md/engine.cc.o.d"
  "CMakeFiles/mcscope_apps.dir/md/forcefield.cc.o"
  "CMakeFiles/mcscope_apps.dir/md/forcefield.cc.o.d"
  "CMakeFiles/mcscope_apps.dir/md/gb.cc.o"
  "CMakeFiles/mcscope_apps.dir/md/gb.cc.o.d"
  "CMakeFiles/mcscope_apps.dir/md/lammps.cc.o"
  "CMakeFiles/mcscope_apps.dir/md/lammps.cc.o.d"
  "CMakeFiles/mcscope_apps.dir/md/pme.cc.o"
  "CMakeFiles/mcscope_apps.dir/md/pme.cc.o.d"
  "CMakeFiles/mcscope_apps.dir/pop/grid.cc.o"
  "CMakeFiles/mcscope_apps.dir/pop/grid.cc.o.d"
  "CMakeFiles/mcscope_apps.dir/pop/pop.cc.o"
  "CMakeFiles/mcscope_apps.dir/pop/pop.cc.o.d"
  "CMakeFiles/mcscope_apps.dir/pop/solver.cc.o"
  "CMakeFiles/mcscope_apps.dir/pop/solver.cc.o.d"
  "libmcscope_apps.a"
  "libmcscope_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcscope_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
