file(REMOVE_RECURSE
  "libmcscope_apps.a"
)
