# Empty compiler generated dependencies file for mcscope_simmpi.
# This may be replaced when dependencies are built.
