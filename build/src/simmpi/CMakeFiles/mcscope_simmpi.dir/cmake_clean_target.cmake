file(REMOVE_RECURSE
  "libmcscope_simmpi.a"
)
