file(REMOVE_RECURSE
  "CMakeFiles/mcscope_simmpi.dir/collectives.cc.o"
  "CMakeFiles/mcscope_simmpi.dir/collectives.cc.o.d"
  "CMakeFiles/mcscope_simmpi.dir/comm.cc.o"
  "CMakeFiles/mcscope_simmpi.dir/comm.cc.o.d"
  "CMakeFiles/mcscope_simmpi.dir/comm_matrix.cc.o"
  "CMakeFiles/mcscope_simmpi.dir/comm_matrix.cc.o.d"
  "CMakeFiles/mcscope_simmpi.dir/implementation.cc.o"
  "CMakeFiles/mcscope_simmpi.dir/implementation.cc.o.d"
  "CMakeFiles/mcscope_simmpi.dir/sublayer.cc.o"
  "CMakeFiles/mcscope_simmpi.dir/sublayer.cc.o.d"
  "libmcscope_simmpi.a"
  "libmcscope_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcscope_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
