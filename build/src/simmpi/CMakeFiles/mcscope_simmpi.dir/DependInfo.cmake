
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/collectives.cc" "src/simmpi/CMakeFiles/mcscope_simmpi.dir/collectives.cc.o" "gcc" "src/simmpi/CMakeFiles/mcscope_simmpi.dir/collectives.cc.o.d"
  "/root/repo/src/simmpi/comm.cc" "src/simmpi/CMakeFiles/mcscope_simmpi.dir/comm.cc.o" "gcc" "src/simmpi/CMakeFiles/mcscope_simmpi.dir/comm.cc.o.d"
  "/root/repo/src/simmpi/comm_matrix.cc" "src/simmpi/CMakeFiles/mcscope_simmpi.dir/comm_matrix.cc.o" "gcc" "src/simmpi/CMakeFiles/mcscope_simmpi.dir/comm_matrix.cc.o.d"
  "/root/repo/src/simmpi/implementation.cc" "src/simmpi/CMakeFiles/mcscope_simmpi.dir/implementation.cc.o" "gcc" "src/simmpi/CMakeFiles/mcscope_simmpi.dir/implementation.cc.o.d"
  "/root/repo/src/simmpi/sublayer.cc" "src/simmpi/CMakeFiles/mcscope_simmpi.dir/sublayer.cc.o" "gcc" "src/simmpi/CMakeFiles/mcscope_simmpi.dir/sublayer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/affinity/CMakeFiles/mcscope_affinity.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/mcscope_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcscope_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
