file(REMOVE_RECURSE
  "libmcscope_kernels.a"
)
