
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/blas1.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/blas1.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/blas1.cc.o.d"
  "/root/repo/src/kernels/blas3.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/blas3.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/blas3.cc.o.d"
  "/root/repo/src/kernels/fft.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/fft.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/fft.cc.o.d"
  "/root/repo/src/kernels/hpl.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/hpl.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/hpl.cc.o.d"
  "/root/repo/src/kernels/nas_cg.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/nas_cg.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/nas_cg.cc.o.d"
  "/root/repo/src/kernels/nas_ep.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/nas_ep.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/nas_ep.cc.o.d"
  "/root/repo/src/kernels/nas_ft.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/nas_ft.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/nas_ft.cc.o.d"
  "/root/repo/src/kernels/nas_is.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/nas_is.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/nas_is.cc.o.d"
  "/root/repo/src/kernels/nas_mg.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/nas_mg.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/nas_mg.cc.o.d"
  "/root/repo/src/kernels/ptrans.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/ptrans.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/ptrans.cc.o.d"
  "/root/repo/src/kernels/randomaccess.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/randomaccess.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/randomaccess.cc.o.d"
  "/root/repo/src/kernels/sparse.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/sparse.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/sparse.cc.o.d"
  "/root/repo/src/kernels/stream.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/stream.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/stream.cc.o.d"
  "/root/repo/src/kernels/workload.cc" "src/kernels/CMakeFiles/mcscope_kernels.dir/workload.cc.o" "gcc" "src/kernels/CMakeFiles/mcscope_kernels.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/mcscope_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/affinity/CMakeFiles/mcscope_affinity.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/mcscope_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcscope_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
