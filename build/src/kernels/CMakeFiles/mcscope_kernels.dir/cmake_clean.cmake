file(REMOVE_RECURSE
  "CMakeFiles/mcscope_kernels.dir/blas1.cc.o"
  "CMakeFiles/mcscope_kernels.dir/blas1.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/blas3.cc.o"
  "CMakeFiles/mcscope_kernels.dir/blas3.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/fft.cc.o"
  "CMakeFiles/mcscope_kernels.dir/fft.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/hpl.cc.o"
  "CMakeFiles/mcscope_kernels.dir/hpl.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/nas_cg.cc.o"
  "CMakeFiles/mcscope_kernels.dir/nas_cg.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/nas_ep.cc.o"
  "CMakeFiles/mcscope_kernels.dir/nas_ep.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/nas_ft.cc.o"
  "CMakeFiles/mcscope_kernels.dir/nas_ft.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/nas_is.cc.o"
  "CMakeFiles/mcscope_kernels.dir/nas_is.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/nas_mg.cc.o"
  "CMakeFiles/mcscope_kernels.dir/nas_mg.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/ptrans.cc.o"
  "CMakeFiles/mcscope_kernels.dir/ptrans.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/randomaccess.cc.o"
  "CMakeFiles/mcscope_kernels.dir/randomaccess.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/sparse.cc.o"
  "CMakeFiles/mcscope_kernels.dir/sparse.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/stream.cc.o"
  "CMakeFiles/mcscope_kernels.dir/stream.cc.o.d"
  "CMakeFiles/mcscope_kernels.dir/workload.cc.o"
  "CMakeFiles/mcscope_kernels.dir/workload.cc.o.d"
  "libmcscope_kernels.a"
  "libmcscope_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcscope_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
