# Empty compiler generated dependencies file for mcscope_kernels.
# This may be replaced when dependencies are built.
