file(REMOVE_RECURSE
  "CMakeFiles/mcscope_sim.dir/engine.cc.o"
  "CMakeFiles/mcscope_sim.dir/engine.cc.o.d"
  "CMakeFiles/mcscope_sim.dir/fairshare.cc.o"
  "CMakeFiles/mcscope_sim.dir/fairshare.cc.o.d"
  "CMakeFiles/mcscope_sim.dir/task.cc.o"
  "CMakeFiles/mcscope_sim.dir/task.cc.o.d"
  "libmcscope_sim.a"
  "libmcscope_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcscope_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
