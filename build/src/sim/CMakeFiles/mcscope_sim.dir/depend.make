# Empty dependencies file for mcscope_sim.
# This may be replaced when dependencies are built.
