file(REMOVE_RECURSE
  "libmcscope_sim.a"
)
