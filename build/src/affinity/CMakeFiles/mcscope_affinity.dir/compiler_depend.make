# Empty compiler generated dependencies file for mcscope_affinity.
# This may be replaced when dependencies are built.
