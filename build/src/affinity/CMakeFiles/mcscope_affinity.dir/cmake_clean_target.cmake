file(REMOVE_RECURSE
  "libmcscope_affinity.a"
)
