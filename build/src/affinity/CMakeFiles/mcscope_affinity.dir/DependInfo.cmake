
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/affinity/cpuset.cc" "src/affinity/CMakeFiles/mcscope_affinity.dir/cpuset.cc.o" "gcc" "src/affinity/CMakeFiles/mcscope_affinity.dir/cpuset.cc.o.d"
  "/root/repo/src/affinity/placement.cc" "src/affinity/CMakeFiles/mcscope_affinity.dir/placement.cc.o" "gcc" "src/affinity/CMakeFiles/mcscope_affinity.dir/placement.cc.o.d"
  "/root/repo/src/affinity/policy.cc" "src/affinity/CMakeFiles/mcscope_affinity.dir/policy.cc.o" "gcc" "src/affinity/CMakeFiles/mcscope_affinity.dir/policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/mcscope_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcscope_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcscope_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
