file(REMOVE_RECURSE
  "CMakeFiles/mcscope_affinity.dir/cpuset.cc.o"
  "CMakeFiles/mcscope_affinity.dir/cpuset.cc.o.d"
  "CMakeFiles/mcscope_affinity.dir/placement.cc.o"
  "CMakeFiles/mcscope_affinity.dir/placement.cc.o.d"
  "CMakeFiles/mcscope_affinity.dir/policy.cc.o"
  "CMakeFiles/mcscope_affinity.dir/policy.cc.o.d"
  "libmcscope_affinity.a"
  "libmcscope_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcscope_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
